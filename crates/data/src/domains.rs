//! Domain archetypes for the WikiSQL-shaped generator.
//!
//! WikiSQL draws tables from thousands of unrelated Wikipedia pages; the
//! generator mirrors that with a library of domain archetypes, each a set
//! of column archetypes. A concrete table samples a subset of columns and
//! fills them from the column's [`ValueKind`]. Column archetypes also carry
//! the natural-language surface forms questions use to mention them —
//! several synonyms (exercising §III challenges 1–2) and long paraphrases
//! (challenge 2), plus a flag for whether values are self-identifying
//! enough for the column mention to be dropped entirely (challenge 3).

use crate::values::ValueKind;

/// How questions may refer to a column.
#[derive(Debug, Clone, Copy)]
pub struct ColumnArchetype {
    /// Candidate schema names (one is sampled per table).
    pub names: &'static [&'static str],
    /// Value generator for cells of this column.
    pub kind: ValueKind,
    /// Short surface forms (words) that mention the column.
    pub mentions: &'static [&'static str],
    /// Long paraphrase phrases mentioning the column (`P_c`-style).
    pub paraphrases: &'static [&'static str],
    /// Whether the column mention may be omitted (implicit mention).
    pub implicit_ok: bool,
}

/// A coherent topic area with its column archetypes. The first archetype
/// is the table's entity column and is always included.
#[derive(Debug, Clone, Copy)]
pub struct Domain {
    /// Domain name (also used for table names).
    pub name: &'static str,
    /// Column archetypes; `columns[0]` is the entity column.
    pub columns: &'static [ColumnArchetype],
}

macro_rules! arch {
    ($names:expr, $kind:expr, $mentions:expr, $paras:expr, $implicit:expr) => {
        ColumnArchetype {
            names: $names,
            kind: $kind,
            mentions: $mentions,
            paraphrases: $paras,
            implicit_ok: $implicit,
        }
    };
}

/// All built-in domains.
pub const DOMAINS: &[Domain] = &[
    Domain {
        name: "films",
        columns: &[
            arch!(&["Film Name", "Title", "Picture"], ValueKind::Title, &["film", "movie", "picture"], &[], false),
            arch!(&["Director"], ValueKind::PersonName, &["director", "directed"], &["directed by"], true),
            arch!(&["Actor", "Lead Actor", "Star"], ValueKind::PersonName, &["actor", "actress", "star"], &["starred in by", "star in"], true),
            arch!(&["Genre", "Category"], ValueKind::Genre, &["genre", "category", "kind"], &["what kind of"], true),
            arch!(&["Release Year", "Year"], ValueKind::Year, &["year", "released"], &["came out in"], true),
            arch!(&["Nomination", "Award"], ValueKind::Genre, &["nomination", "award", "prize"], &["nominated for"], false),
        ],
    },
    Domain {
        name: "athletes",
        columns: &[
            arch!(&["Player", "Athlete", "Name"], ValueKind::PersonName, &["player", "athlete", "golfer"], &[], true),
            arch!(&["Team", "Club"], ValueKind::Team, &["team", "club", "side"], &["plays for"], true),
            arch!(&["Position"], ValueKind::SportPosition, &["position", "role"], &["what position did"], true),
            arch!(&["Country", "Nationality"], ValueKind::Nationality, &["country", "nationality"], &["golfs for", "comes from"], true),
            arch!(&["Score", "Points"], ValueKind::SmallInt, &["score", "points"], &["final score"], false),
            arch!(&["Rank", "Seed"], ValueKind::SmallInt, &["rank", "seed", "standing"], &[], false),
        ],
    },
    Domain {
        name: "counties",
        columns: &[
            arch!(&["County", "District"], ValueKind::Place, &["county", "district", "region"], &[], true),
            arch!(&["English Name"], ValueKind::Place, &["english name", "name"], &["have the english name"], false),
            arch!(&["Population"], ValueKind::BigInt, &["population", "people"], &["how many people live in"], false),
            arch!(&["Irish Speakers", "Speakers"], ValueKind::Percent, &["speakers", "irish"], &["share of irish speakers"], false),
            arch!(&["Area"], ValueKind::BigInt, &["area", "size"], &["how large is"], false),
        ],
    },
    Domain {
        name: "missions",
        columns: &[
            arch!(&["Mission", "Flight"], ValueKind::Title, &["mission", "missions", "flight"], &[], false),
            arch!(&["Launch Date", "Date"], ValueKind::DateText, &["date", "launch", "scheduled"], &["scheduled to launch on"], true),
            arch!(&["Crew Size", "Crew"], ValueKind::SmallInt, &["crew", "astronauts"], &["how many people flew"], false),
            arch!(&["Agency", "Operator"], ValueKind::Party, &["agency", "operator"], &["run by"], true),
            arch!(&["Duration Days", "Duration"], ValueKind::SmallInt, &["duration", "days"], &["how long did"], false),
        ],
    },
    Domain {
        name: "races",
        columns: &[
            arch!(&["Race", "Grand Prix"], ValueKind::Title, &["race", "grand prix"], &[], false),
            arch!(&["Winning Driver", "Winner"], ValueKind::PersonName, &["driver", "winner", "won"], &["driver won", "who won"], true),
            arch!(&["Venue", "Circuit"], ValueKind::Venue, &["venue", "circuit", "track"], &["where was the race held"], true),
            arch!(&["Date"], ValueKind::DateText, &["date", "when"], &["played on"], true),
            arch!(&["Laps"], ValueKind::SmallInt, &["laps"], &["how many laps"], false),
        ],
    },
    Domain {
        name: "albums",
        columns: &[
            arch!(&["Album", "Record"], ValueKind::Title, &["album", "record"], &[], false),
            arch!(&["Artist", "Band"], ValueKind::PersonName, &["artist", "singer", "band"], &["recorded by"], true),
            arch!(&["Genre"], ValueKind::Genre, &["genre", "style"], &[], true),
            arch!(&["Release Year", "Year"], ValueKind::Year, &["year", "released"], &["came out in"], true),
            arch!(&["Sales"], ValueKind::BigInt, &["sales", "copies"], &["how many copies sold"], false),
        ],
    },
    Domain {
        name: "elections",
        columns: &[
            arch!(&["Candidate", "Nominee"], ValueKind::PersonName, &["candidate", "candidates", "nominee"], &[], true),
            arch!(&["Party"], ValueKind::Party, &["party", "affiliation"], &["runs for"], true),
            arch!(&["Votes"], ValueKind::BigInt, &["votes", "ballots"], &["how many votes did"], false),
            arch!(&["District", "Constituency"], ValueKind::Place, &["district", "constituency"], &["stood in"], true),
            arch!(&["Election Year", "Year"], ValueKind::Year, &["year", "elected"], &["was elected in"], true),
        ],
    },
    Domain {
        name: "restaurants",
        columns: &[
            arch!(&["Restaurant", "Name"], ValueKind::Title, &["restaurant", "diner", "eatery"], &[], false),
            arch!(&["City", "Location"], ValueKind::Place, &["city", "location", "where"], &["located in"], true),
            arch!(&["Cuisine", "Specialty"], ValueKind::Food, &["cuisine", "dish", "specialty"], &["known for serving"], true),
            arch!(&["Rating", "Stars"], ValueKind::SmallInt, &["rating", "stars"], &["how well rated is"], false),
            arch!(&["Price", "Average Price"], ValueKind::Money, &["price", "cost"], &["how much does it cost"], false),
        ],
    },
    Domain {
        name: "schools",
        columns: &[
            arch!(&["School", "University"], ValueKind::School, &["school", "college", "university"], &[], false),
            arch!(&["City", "Town"], ValueKind::Place, &["city", "town"], &["located in"], true),
            arch!(&["Enrollment", "Students"], ValueKind::BigInt, &["enrollment", "students"], &["how many students attend"], false),
            arch!(&["Founded", "Established"], ValueKind::Year, &["founded", "established"], &["was founded in"], true),
            arch!(&["Tuition"], ValueKind::Money, &["tuition", "fee"], &["how much does it cost to attend"], false),
        ],
    },
    Domain {
        name: "patients",
        columns: &[
            arch!(&["Patient", "Name"], ValueKind::PersonName, &["patient", "patients", "name"], &[], true),
            arch!(&["Disease", "Diagnosis"], ValueKind::Disease, &["disease", "diagnosis", "illness"], &["suffers from"], true),
            arch!(&["Doctor", "Physician"], ValueKind::PersonName, &["doctor", "physician"], &["treated by"], true),
            arch!(&["Age"], ValueKind::SmallInt, &["age", "old"], &["how old is"], false),
            arch!(&["City"], ValueKind::Place, &["city"], &["lives in"], true),
        ],
    },
    Domain {
        name: "games",
        columns: &[
            arch!(&["Game", "Match"], ValueKind::Title, &["game", "match", "fixture"], &[], false),
            arch!(&["Home Team", "Home"], ValueKind::Team, &["home team", "home"], &["play at home"], true),
            arch!(&["Away Team", "Opponent"], ValueKind::Team, &["opponent", "away team", "rival"], &["played against"], true),
            arch!(&["Venue", "Stadium"], ValueKind::Venue, &["venue", "stadium", "where"], &["where was the game played"], true),
            arch!(&["Date"], ValueKind::DateText, &["date", "when"], &["played on"], true),
            arch!(&["Attendance", "Crowd"], ValueKind::BigInt, &["attendance", "crowd"], &["how many people watched"], false),
        ],
    },
    Domain {
        name: "books",
        columns: &[
            arch!(&["Book", "Novel", "Title"], ValueKind::Title, &["book", "novel", "title"], &[], false),
            arch!(&["Author", "Writer"], ValueKind::PersonName, &["author", "writer", "novelist"], &["written by"], true),
            arch!(&["Language"], ValueKind::Language, &["language", "tongue"], &["written in"], true),
            arch!(&["Pages"], ValueKind::BigInt, &["pages", "length"], &["how long is"], false),
            arch!(&["Published", "Year"], ValueKind::Year, &["published", "year"], &["came out in"], true),
        ],
    },
    Domain {
        name: "flights",
        columns: &[
            arch!(&["Flight", "Route"], ValueKind::Title, &["flight", "route"], &[], false),
            arch!(&["Destination", "City"], ValueKind::Place, &["destination", "city", "where"], &["flies to"], true),
            arch!(&["Airline", "Carrier"], ValueKind::Party, &["airline", "carrier"], &["operated by"], true),
            arch!(&["Fare", "Price"], ValueKind::Money, &["fare", "price", "cost"], &["how much is a ticket"], false),
            arch!(&["Capacity", "Seats"], ValueKind::BigInt, &["capacity", "seats"], &["how many seats"], false),
        ],
    },
    Domain {
        name: "recipes",
        columns: &[
            arch!(&["Recipe", "Dish"], ValueKind::Food, &["recipe", "dish", "meal"], &[], false),
            arch!(&["Cuisine", "Origin"], ValueKind::Nationality, &["cuisine", "origin"], &["comes from"], true),
            arch!(&["Cook Time", "Minutes"], ValueKind::SmallInt, &["time", "minutes", "duration"], &["how long does it take to cook"], false),
            arch!(&["Calories"], ValueKind::BigInt, &["calories", "energy"], &["how many calories"], false),
            arch!(&["Chef", "Author"], ValueKind::PersonName, &["chef", "author"], &["created by"], true),
        ],
    },
    Domain {
        name: "buildings",
        columns: &[
            arch!(&["Building", "Tower"], ValueKind::Title, &["building", "tower"], &[], false),
            arch!(&["City"], ValueKind::Place, &["city", "where"], &["located in"], true),
            arch!(&["Height"], ValueKind::BigInt, &["height", "tall"], &["how tall is"], false),
            arch!(&["Floors"], ValueKind::SmallInt, &["floors", "storeys"], &["how many floors"], false),
            arch!(&["Built", "Completed"], ValueKind::Year, &["built", "completed"], &["was built in"], true),
        ],
    },
    Domain {
        name: "museums",
        columns: &[
            arch!(&["Museum", "Gallery"], ValueKind::Title, &["museum", "gallery"], &[], false),
            arch!(&["City"], ValueKind::Place, &["city", "where"], &["located in"], true),
            arch!(&["Visitors", "Annual Visitors"], ValueKind::BigInt, &["visitors", "attendance"], &["how many people visit"], false),
            arch!(&["Founded"], ValueKind::Year, &["founded", "opened"], &["was founded in"], true),
            arch!(&["Admission", "Ticket Price"], ValueKind::Money, &["admission", "ticket", "price"], &["how much does entry cost"], false),
        ],
    },
    Domain {
        name: "trains",
        columns: &[
            arch!(&["Service", "Train"], ValueKind::Title, &["train", "service"], &[], false),
            arch!(&["Destination"], ValueKind::Place, &["destination", "where"], &["runs to"], true),
            arch!(&["Departure", "Date"], ValueKind::DateText, &["departure", "date", "when"], &["leaves on"], true),
            arch!(&["Platform"], ValueKind::SmallInt, &["platform", "track"], &[], false),
            arch!(&["Distance Km", "Distance"], ValueKind::BigInt, &["distance", "km"], &["how far does it travel"], false),
        ],
    },
    Domain {
        name: "startups",
        columns: &[
            arch!(&["Company", "Startup"], ValueKind::Title, &["company", "startup", "firm"], &[], false),
            arch!(&["Founder", "CEO"], ValueKind::PersonName, &["founder", "ceo"], &["started by"], true),
            arch!(&["Sector", "Industry"], ValueKind::Genre, &["sector", "industry"], &["operates in"], true),
            arch!(&["Funding", "Raised"], ValueKind::Money, &["funding", "raised", "capital"], &["how much money did", "raise"], false),
            arch!(&["Employees", "Headcount"], ValueKind::BigInt, &["employees", "headcount", "staff"], &["how many people work at"], false),
        ],
    },
    Domain {
        name: "mountains",
        columns: &[
            arch!(&["Mountain", "Peak"], ValueKind::Title, &["mountain", "peak", "summit"], &[], false),
            arch!(&["Country"], ValueKind::Nationality, &["country", "nation"], &["lies in"], true),
            arch!(&["Elevation", "Height"], ValueKind::BigInt, &["elevation", "height", "tall"], &["how high is"], false),
            arch!(&["First Ascent", "Climbed"], ValueKind::Year, &["climbed", "ascent"], &["was first climbed in"], true),
            arch!(&["Climber"], ValueKind::PersonName, &["climber", "mountaineer"], &["first climbed by"], true),
        ],
    },
    Domain {
        name: "courses",
        columns: &[
            arch!(&["Course", "Class"], ValueKind::Title, &["course", "class", "subject"], &[], false),
            arch!(&["Instructor", "Teacher"], ValueKind::PersonName, &["instructor", "teacher", "professor"], &["taught by"], true),
            arch!(&["Credits"], ValueKind::SmallInt, &["credits", "units"], &["how many credits is"], false),
            arch!(&["Enrollment"], ValueKind::BigInt, &["enrollment", "students"], &["how many students take"], false),
            arch!(&["Semester", "Term"], ValueKind::Year, &["semester", "term", "year"], &["is offered in"], true),
        ],
    },
    Domain {
        name: "employees",
        columns: &[
            arch!(&["Employee", "Name"], ValueKind::PersonName, &["employee", "worker", "name"], &[], true),
            arch!(&["Department", "Division"], ValueKind::Genre, &["department", "division"], &["works in"], true),
            arch!(&["Salary", "Pay"], ValueKind::Money, &["salary", "pay", "wage"], &["how much does", "earn"], false),
            arch!(&["Hired", "Start Year"], ValueKind::Year, &["hired", "joined"], &["started working in"], true),
            arch!(&["Office", "Location"], ValueKind::Place, &["office", "location"], &["based in"], true),
        ],
    },
];

/// Looks up a domain by name.
pub fn domain_by_name(name: &str) -> Option<&'static Domain> {
    DOMAINS.iter().find(|d| d.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_domains_have_entity_plus_columns() {
        for d in DOMAINS {
            assert!(d.columns.len() >= 4, "{} too small", d.name);
            assert!(!d.columns[0].names.is_empty());
        }
    }

    #[test]
    fn every_archetype_has_mentions() {
        for d in DOMAINS {
            for c in d.columns {
                assert!(!c.mentions.is_empty(), "{}:{:?} lacks mentions", d.name, c.names);
                assert!(!c.names.is_empty());
            }
        }
    }

    #[test]
    fn domain_names_are_unique() {
        let mut names: Vec<&str> = DOMAINS.iter().map(|d| d.name).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before);
    }

    #[test]
    fn lookup_by_name() {
        assert!(domain_by_name("films").is_some());
        assert!(domain_by_name("nope").is_none());
    }

    #[test]
    fn implicit_columns_have_identifying_value_kinds() {
        // If a column can be mentioned implicitly, its values must be
        // distinctive enough to infer the column (names, places, ...).
        use crate::values::ValueKind as VK;
        for d in DOMAINS {
            for c in d.columns {
                if c.implicit_ok {
                    assert!(
                        !matches!(c.kind, VK::SmallInt | VK::BigInt | VK::Money | VK::Percent),
                        "{}:{:?} marked implicit with generic numeric values",
                        d.name,
                        c.names
                    );
                }
            }
        }
    }

    #[test]
    fn paraphrases_are_multiword_or_absent() {
        for d in DOMAINS {
            for c in d.columns {
                for p in c.paraphrases {
                    assert!(p.contains(' ') || p.len() > 3, "{p} is too short a paraphrase");
                }
            }
        }
    }
}
