//! Dataset export in a WikiSQL-release-like JSONL format.
//!
//! Each line is one record with the question, the table (schema + rows),
//! the gold SQL (both structured and rendered), and the gold mention
//! spans — so the synthetic corpora can be inspected, diffed across
//! seeds, or consumed by external tooling.

use nlidb_json::{FromJson, Json, JsonError, ToJson};
use nlidb_sqlir::Query;

use crate::example::{Example, SlotRole};

/// One exported record.
#[derive(Debug, Clone)]
pub struct ExportRecord {
    /// Example id.
    pub id: usize,
    /// Table name (unique per table within a corpus).
    pub table: String,
    /// Column names.
    pub columns: Vec<String>,
    /// Column types as strings (`text` / `int` / `float`).
    pub types: Vec<String>,
    /// Table rows (cell display text).
    pub rows: Vec<Vec<String>>,
    /// Question tokens.
    pub question: Vec<String>,
    /// Structured gold query.
    pub sql: Query,
    /// Rendered gold SQL.
    pub sql_text: String,
    /// Gold slots: (role, column, col_span, value, val_span).
    pub slots: Vec<ExportSlot>,
    /// WikiSQL-sketch compatibility flag.
    pub sketch_compatible: bool,
}

/// One exported gold slot.
#[derive(Debug, Clone)]
pub struct ExportSlot {
    /// `"select"` or `"cond<i>"`.
    pub role: String,
    /// Schema column index.
    pub column: usize,
    /// Column mention span, if explicit.
    pub col_span: Option<(usize, usize)>,
    /// Value text, if any.
    pub value: Option<String>,
    /// Value mention span, if any.
    pub val_span: Option<(usize, usize)>,
}

impl ToJson for ExportRecord {
    fn to_json(&self) -> Json {
        Json::obj([
            ("id", self.id.to_json()),
            ("table", self.table.to_json()),
            ("columns", self.columns.to_json()),
            ("types", self.types.to_json()),
            ("rows", self.rows.to_json()),
            ("question", self.question.to_json()),
            ("sql", self.sql.to_json()),
            ("sql_text", self.sql_text.to_json()),
            ("slots", self.slots.to_json()),
            ("sketch_compatible", self.sketch_compatible.to_json()),
        ])
    }
}

impl FromJson for ExportRecord {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        Ok(ExportRecord {
            id: j.req("id")?,
            table: j.req("table")?,
            columns: j.req("columns")?,
            types: j.req("types")?,
            rows: j.req("rows")?,
            question: j.req("question")?,
            sql: j.req("sql")?,
            sql_text: j.req("sql_text")?,
            slots: j.req("slots")?,
            sketch_compatible: j.req("sketch_compatible")?,
        })
    }
}

impl ToJson for ExportSlot {
    fn to_json(&self) -> Json {
        Json::obj([
            ("role", self.role.to_json()),
            ("column", self.column.to_json()),
            ("col_span", self.col_span.to_json()),
            ("value", self.value.to_json()),
            ("val_span", self.val_span.to_json()),
        ])
    }
}

impl FromJson for ExportSlot {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        Ok(ExportSlot {
            role: j.req("role")?,
            column: j.req("column")?,
            col_span: j.opt("col_span")?,
            value: j.opt("value")?,
            val_span: j.opt("val_span")?,
        })
    }
}

/// Builds the export record for one example.
pub fn export_record(e: &Example) -> ExportRecord {
    ExportRecord {
        id: e.id,
        table: e.table.name.clone(),
        columns: e.table.column_names(),
        types: e
            .table
            .schema()
            .columns()
            .iter()
            .map(|c| format!("{:?}", c.dtype).to_lowercase())
            .collect(),
        rows: (0..e.table.num_rows())
            .map(|r| {
                (0..e.table.num_cols()).map(|c| e.table.cell(r, c).to_string()).collect()
            })
            .collect(),
        question: e.question.clone(),
        sql: e.query.clone(),
        sql_text: e.sql_text(),
        slots: e
            .slots
            .iter()
            .map(|s| ExportSlot {
                role: match s.role {
                    SlotRole::Select => "select".to_string(),
                    SlotRole::Cond(i) => format!("cond{i}"),
                },
                column: s.column,
                col_span: s.col_span,
                value: s.value.clone(),
                val_span: s.val_span,
            })
            .collect(),
        sketch_compatible: e.sketch_compatible,
    }
}

/// Serializes examples to JSONL (one record per line).
pub fn to_jsonl(examples: &[Example]) -> String {
    let mut out = String::new();
    for e in examples {
        out.push_str(&export_record(e).to_json().to_string());
        out.push('\n');
    }
    out
}

/// A bounded-buffer JSONL writer: serializes one record at a time into an
/// in-memory buffer and flushes it to the sink whenever it crosses the
/// configured bound — so writing a shard of any size keeps memory at
/// O(bound + one record) instead of materializing the whole corpus
/// string (which is what [`to_jsonl`] does, and what capped corpus size
/// before the sharded pipeline).
pub struct JsonlWriter<W: std::io::Write> {
    sink: W,
    buf: String,
    bound: usize,
    records: usize,
    bytes: u64,
}

/// Default flush bound for [`JsonlWriter`] (64 KiB).
pub const JSONL_WRITER_BOUND: usize = 64 * 1024;

impl<W: std::io::Write> JsonlWriter<W> {
    /// A writer over `sink` with the default buffer bound.
    pub fn new(sink: W) -> Self {
        Self::with_bound(sink, JSONL_WRITER_BOUND)
    }

    /// A writer over `sink` flushing whenever the buffer exceeds `bound`
    /// bytes (a bound of 0 flushes after every record).
    pub fn with_bound(sink: W, bound: usize) -> Self {
        JsonlWriter { sink, buf: String::new(), bound, records: 0, bytes: 0 }
    }

    /// Appends one record (one output line).
    pub fn write_record(&mut self, r: &ExportRecord) -> std::io::Result<()> {
        self.buf.push_str(&r.to_json().to_string());
        self.buf.push('\n');
        self.records += 1;
        if self.buf.len() > self.bound {
            self.flush_buf()?;
        }
        Ok(())
    }

    /// Appends one example (see [`export_record`]).
    pub fn write_example(&mut self, e: &Example) -> std::io::Result<()> {
        self.write_record(&export_record(e))
    }

    /// Records written so far.
    pub fn records(&self) -> usize {
        self.records
    }

    /// Bytes pushed to the sink so far (excludes the unflushed buffer).
    pub fn bytes_flushed(&self) -> u64 {
        self.bytes
    }

    fn flush_buf(&mut self) -> std::io::Result<()> {
        self.sink.write_all(self.buf.as_bytes())?;
        self.bytes += self.buf.len() as u64;
        self.buf.clear();
        Ok(())
    }

    /// Flushes the remaining buffer and returns the sink.
    pub fn finish(mut self) -> std::io::Result<W> {
        self.flush_buf()?;
        self.sink.flush()?;
        Ok(self.sink)
    }
}

/// Parses records back from JSONL (for diffing/inspection round trips;
/// does not rebuild `Example` — tables are kept as raw rows).
pub fn from_jsonl(jsonl: &str) -> Result<Vec<ExportRecord>, JsonError> {
    jsonl
        .lines()
        .filter(|l| !l.trim().is_empty())
        .map(|l| ExportRecord::from_json(&Json::parse(l)?))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wikisql::{generate, WikiSqlConfig};

    #[test]
    fn jsonl_roundtrip() {
        let ds = generate(&WikiSqlConfig::tiny(3));
        let jsonl = to_jsonl(&ds.dev);
        let records = from_jsonl(&jsonl).expect("parses");
        assert_eq!(records.len(), ds.dev.len());
        for (r, e) in records.iter().zip(&ds.dev) {
            assert_eq!(r.question, e.question);
            assert_eq!(r.sql_text, e.sql_text());
            assert_eq!(r.columns.len(), r.types.len());
            assert_eq!(r.slots.len(), e.slots.len());
            assert!(!r.rows.is_empty());
        }
    }

    #[test]
    fn select_slot_is_labeled() {
        let ds = generate(&WikiSqlConfig::tiny(4));
        let records = from_jsonl(&to_jsonl(&ds.train[..3])).unwrap();
        for r in &records {
            assert!(r.slots.iter().any(|s| s.role == "select"));
        }
    }

    #[test]
    fn empty_input_is_empty_output() {
        assert_eq!(to_jsonl(&[]), "");
        assert!(from_jsonl("").unwrap().is_empty());
    }

    #[test]
    fn bounded_writer_output_matches_to_jsonl() {
        let ds = generate(&WikiSqlConfig::tiny(6));
        let want = to_jsonl(&ds.train);
        // A tiny bound forces many flushes; the bytes must be identical.
        let mut w = JsonlWriter::with_bound(Vec::new(), 32);
        for e in &ds.train {
            w.write_example(e).unwrap();
        }
        assert_eq!(w.records(), ds.train.len());
        let sink = w.finish().unwrap();
        assert_eq!(String::from_utf8(sink).unwrap(), want);
    }

    #[test]
    fn structured_sql_matches_rendered() {
        let ds = generate(&WikiSqlConfig::tiny(5));
        let records = from_jsonl(&to_jsonl(&ds.test)).unwrap();
        for r in &records {
            assert_eq!(r.sql.to_sql(&r.columns), r.sql_text);
        }
    }
}
