//! Dataset export in a WikiSQL-release-like JSONL format.
//!
//! Each line is one record with the question, the table (schema + rows),
//! the gold SQL (both structured and rendered), and the gold mention
//! spans — so the synthetic corpora can be inspected, diffed across
//! seeds, or consumed by external tooling.

use nlidb_sqlir::Query;
use serde::{Deserialize, Serialize};

use crate::example::{Example, SlotRole};

/// One exported record.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExportRecord {
    /// Example id.
    pub id: usize,
    /// Table name (unique per table within a corpus).
    pub table: String,
    /// Column names.
    pub columns: Vec<String>,
    /// Column types as strings (`text` / `int` / `float`).
    pub types: Vec<String>,
    /// Table rows (cell display text).
    pub rows: Vec<Vec<String>>,
    /// Question tokens.
    pub question: Vec<String>,
    /// Structured gold query.
    pub sql: Query,
    /// Rendered gold SQL.
    pub sql_text: String,
    /// Gold slots: (role, column, col_span, value, val_span).
    pub slots: Vec<ExportSlot>,
    /// WikiSQL-sketch compatibility flag.
    pub sketch_compatible: bool,
}

/// One exported gold slot.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExportSlot {
    /// `"select"` or `"cond<i>"`.
    pub role: String,
    /// Schema column index.
    pub column: usize,
    /// Column mention span, if explicit.
    pub col_span: Option<(usize, usize)>,
    /// Value text, if any.
    pub value: Option<String>,
    /// Value mention span, if any.
    pub val_span: Option<(usize, usize)>,
}

fn record(e: &Example) -> ExportRecord {
    ExportRecord {
        id: e.id,
        table: e.table.name.clone(),
        columns: e.table.column_names(),
        types: e
            .table
            .schema()
            .columns()
            .iter()
            .map(|c| format!("{:?}", c.dtype).to_lowercase())
            .collect(),
        rows: (0..e.table.num_rows())
            .map(|r| {
                (0..e.table.num_cols()).map(|c| e.table.cell(r, c).to_string()).collect()
            })
            .collect(),
        question: e.question.clone(),
        sql: e.query.clone(),
        sql_text: e.sql_text(),
        slots: e
            .slots
            .iter()
            .map(|s| ExportSlot {
                role: match s.role {
                    SlotRole::Select => "select".to_string(),
                    SlotRole::Cond(i) => format!("cond{i}"),
                },
                column: s.column,
                col_span: s.col_span,
                value: s.value.clone(),
                val_span: s.val_span,
            })
            .collect(),
        sketch_compatible: e.sketch_compatible,
    }
}

/// Serializes examples to JSONL (one record per line).
pub fn to_jsonl(examples: &[Example]) -> String {
    let mut out = String::new();
    for e in examples {
        out.push_str(&serde_json::to_string(&record(e)).expect("export serializes"));
        out.push('\n');
    }
    out
}

/// Parses records back from JSONL (for diffing/inspection round trips;
/// does not rebuild `Example` — tables are kept as raw rows).
pub fn from_jsonl(jsonl: &str) -> Result<Vec<ExportRecord>, serde_json::Error> {
    jsonl
        .lines()
        .filter(|l| !l.trim().is_empty())
        .map(serde_json::from_str)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wikisql::{generate, WikiSqlConfig};

    #[test]
    fn jsonl_roundtrip() {
        let ds = generate(&WikiSqlConfig::tiny(3));
        let jsonl = to_jsonl(&ds.dev);
        let records = from_jsonl(&jsonl).expect("parses");
        assert_eq!(records.len(), ds.dev.len());
        for (r, e) in records.iter().zip(&ds.dev) {
            assert_eq!(r.question, e.question);
            assert_eq!(r.sql_text, e.sql_text());
            assert_eq!(r.columns.len(), r.types.len());
            assert_eq!(r.slots.len(), e.slots.len());
            assert!(!r.rows.is_empty());
        }
    }

    #[test]
    fn select_slot_is_labeled() {
        let ds = generate(&WikiSqlConfig::tiny(4));
        let records = from_jsonl(&to_jsonl(&ds.train[..3])).unwrap();
        for r in &records {
            assert!(r.slots.iter().any(|s| s.role == "select"));
        }
    }

    #[test]
    fn empty_input_is_empty_output() {
        assert_eq!(to_jsonl(&[]), "");
        assert!(from_jsonl("").unwrap().is_empty());
    }

    #[test]
    fn structured_sql_matches_rendered() {
        let ds = generate(&WikiSqlConfig::tiny(5));
        let records = from_jsonl(&to_jsonl(&ds.test)).unwrap();
        for r in &records {
            assert_eq!(r.sql.to_sql(&r.columns), r.sql_text);
        }
    }
}
