//! ParaphraseBench-style robustness benchmark (§VII-B2, Table IV(b)).
//!
//! A fixed patient table (as in DBPal's benchmark) with six linguistic
//! variant categories per base question. Categories are engineered to
//! reproduce the paper's difficulty ordering: NAIVE and SYNTACTIC keep the
//! column's surface word (easy), MORPHOLOGICAL inflects it (char-level
//! similarity still works), LEXICAL swaps in rare synonyms outside the
//! embedding lexicon, SEMANTIC replaces the mention with an unseen
//! paraphrase, and MISSING removes the signal entirely.

use std::sync::Arc;

use nlidb_sqlir::{CmpOp, Literal, Query};
use nlidb_storage::{Column, DataType, Schema, Table, Value};
use nlidb_tensor::Rng;

use crate::example::{Example, GoldSlot, SlotRole};
use crate::values::ValueKind;

/// The six linguistic variant categories, in Table IV(b) order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ParaCategory {
    /// Direct column-name phrasing.
    Naive,
    /// Clause-reordered phrasing.
    Syntactic,
    /// Rare single-word synonyms.
    Lexical,
    /// Inflected column words.
    Morphological,
    /// Full paraphrases that avoid the column vocabulary.
    Semantic,
    /// No column signal at all.
    Missing,
}

impl ParaCategory {
    /// All categories in paper order.
    pub const ALL: [ParaCategory; 6] = [
        ParaCategory::Naive,
        ParaCategory::Syntactic,
        ParaCategory::Lexical,
        ParaCategory::Morphological,
        ParaCategory::Semantic,
        ParaCategory::Missing,
    ];

    /// Display name matching the paper's table.
    pub fn name(self) -> &'static str {
        match self {
            ParaCategory::Naive => "NAIVE",
            ParaCategory::Syntactic => "SYNTACTIC",
            ParaCategory::Lexical => "LEXICAL",
            ParaCategory::Morphological => "MORPHOLOGICAL",
            ParaCategory::Semantic => "SEMANTIC",
            ParaCategory::Missing => "MISSING",
        }
    }
}

/// Question templates for one queried column. `{name}` is replaced by the
/// patient's name; `«...»` delimits the column-mention span.
struct ColTemplates {
    /// Index of the queried column in the patient schema.
    col: usize,
    naive: &'static str,
    syntactic: &'static str,
    lexical: &'static str,
    morphological: &'static str,
    semantic: &'static str,
}

/// Patient schema: Name, Age, Disease, Doctor, City, Length of Stay.
const TEMPLATES: &[ColTemplates] = &[
    ColTemplates {
        col: 1, // Age
        naive: "what is the «age» of patient {name} ?",
        syntactic: "of patient {name} what is the «age» ?",
        lexical: "what is the «maturity» of patient {name} ?",
        morphological: "what is the «aging» of patient {name} ?",
        semantic: "«what year of life is» patient {name} in ?",
        // accuracy note: "how old" would hit the lexicon; use an unseen phrase
    },
    ColTemplates {
        col: 2, // Disease
        naive: "what is the «disease» of patient {name} ?",
        syntactic: "for patient {name} show the «disease» ?",
        lexical: "what is the «ailment» of patient {name} ?",
        morphological: "what are the «diseases» of patient {name} ?",
        semantic: "«what is» patient {name} «suffering from» ?",
    },
    ColTemplates {
        col: 3, // Doctor
        naive: "who is the «doctor» of patient {name} ?",
        syntactic: "patient {name} has which «doctor» ?",
        lexical: "who is the «medic» of patient {name} ?",
        morphological: "who are the «doctors» of patient {name} ?",
        semantic: "«who takes care of» patient {name} ?",
    },
    ColTemplates {
        col: 4, // City
        naive: "what is the «city» of patient {name} ?",
        syntactic: "in which «city» does patient {name} stay ?",
        lexical: "what is the «municipality» of patient {name} ?",
        morphological: "what are the «cities» of patient {name} ?",
        semantic: "«what are the whereabouts of» patient {name} ?",
    },
    ColTemplates {
        col: 5, // Length of Stay
        naive: "what is the «length of stay» of patient {name} ?",
        syntactic: "of patient {name} what is the «length of stay» ?",
        lexical: "what is the «sojourn» of patient {name} ?",
        morphological: "what is the «lengthy stay» of patient {name} ?",
        semantic: "«how many nights did» patient {name} «remain» ?",
    },
];

const MISSING_TEMPLATES: &[&str] =
    &["what about patient {name} ?", "tell me about {name} ?", "patient {name} ?"];

/// Builds the fixed patient table.
pub fn patient_table(seed: u64, rows: usize) -> Arc<Table> {
    let mut rng = Rng::seed_from_u64(seed);
    let schema = Schema::new(vec![
        Column::new("Name", DataType::Text),
        Column::new("Age", DataType::Int),
        Column::new("Disease", DataType::Text),
        Column::new("Doctor", DataType::Text),
        Column::new("City", DataType::Text),
        Column::new("Length of Stay", DataType::Int),
    ]);
    let mut table = Table::new("patients", schema);
    let mut seen = std::collections::HashSet::new();
    while table.num_rows() < rows {
        let name = ValueKind::PersonName.generate(&mut rng);
        if !seen.insert(name.canonical_text()) {
            continue;
        }
        table.push_row(vec![
            name,
            Value::Int(rng.gen_range(1..=95)),
            ValueKind::Disease.generate(&mut rng),
            ValueKind::PersonName.generate(&mut rng),
            ValueKind::Place.generate(&mut rng),
            Value::Int(rng.gen_range(1..=40)),
        ]);
    }
    Arc::new(table)
}

/// Rendered template: tokens, optional column-mention span, value span.
type Rendered = (Vec<String>, Option<(usize, usize)>, (usize, usize));

/// Renders a marker template into tokens + spans.
fn render(template: &str, name: &str) -> Rendered {
    let mut toks: Vec<String> = Vec::new();
    let mut col_span: Option<(usize, usize)> = None;
    let mut val_span = (0, 0);
    let mut col_start: Option<usize> = None;
    let mut rest = template;
    while !rest.is_empty() {
        if let Some(stripped) = rest.strip_prefix('«') {
            col_start = Some(toks.len());
            rest = stripped;
        } else if let Some(stripped) = rest.strip_prefix('»') {
            let start = col_start.take().expect("unbalanced column marker");
            // Merge multi-segment mentions into one covering span.
            col_span = Some(match col_span {
                None => (start, toks.len()),
                Some((a, _)) => (a, toks.len()),
            });
            rest = stripped;
        } else if let Some(stripped) = rest.strip_prefix("{name}") {
            let a = toks.len();
            toks.extend(nlidb_text::tokenize(name));
            val_span = (a, toks.len());
            rest = stripped;
        } else {
            let next = rest
                .char_indices()
                .find(|(_, c)| *c == '«' || *c == '»' || *c == '{')
                .map(|(i, _)| i)
                .unwrap_or(rest.len());
            let (lit, tail) = rest.split_at(next.max(1));
            toks.extend(nlidb_text::tokenize(lit));
            rest = tail;
        }
    }
    (toks, col_span, val_span)
}

/// The generated benchmark: the table plus categorized examples.
#[derive(Debug, Clone)]
pub struct ParaphraseBench {
    /// The shared patient table.
    pub table: Arc<Table>,
    /// `(category, example)` records.
    pub records: Vec<(ParaCategory, Example)>,
}

/// Generates the benchmark: for each category, `per_category` questions
/// uniformly covering the queried columns and patients.
pub fn generate(seed: u64, per_category: usize) -> ParaphraseBench {
    let table = patient_table(seed, 12);
    let mut rng = Rng::seed_from_u64(seed ^ 0x5eed);
    let mut records = Vec::new();
    let mut next_id = 0;
    for cat in ParaCategory::ALL {
        for k in 0..per_category {
            let t = &TEMPLATES[k % TEMPLATES.len()];
            let row = rng.gen_range(0..table.num_rows());
            let name = table.cell(row, 0).to_string().to_lowercase();
            let template = match cat {
                ParaCategory::Naive => t.naive,
                ParaCategory::Syntactic => t.syntactic,
                ParaCategory::Lexical => t.lexical,
                ParaCategory::Morphological => t.morphological,
                ParaCategory::Semantic => t.semantic,
                ParaCategory::Missing => MISSING_TEMPLATES[k % MISSING_TEMPLATES.len()],
            };
            let (question, col_span, val_span) = render(template, &name);
            let query = Query::select(t.col).and_where(
                0,
                CmpOp::Eq,
                Literal::Text(name.clone()),
            );
            let slots = vec![
                GoldSlot {
                    role: SlotRole::Select,
                    column: t.col,
                    col_span,
                    value: None,
                    val_span: None,
                },
                GoldSlot {
                    role: SlotRole::Cond(0),
                    column: 0,
                    col_span: None,
                    value: Some(name.clone()),
                    val_span: Some(val_span),
                },
            ];
            records.push((
                cat,
                Example {
                    id: next_id,
                    question,
                    table: Arc::clone(&table),
                    query,
                    slots,
                    sketch_compatible: true,
                },
            ));
            next_id += 1;
        }
    }
    ParaphraseBench { table, records }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_categories_with_requested_counts() {
        let bench = generate(1, 10);
        for cat in ParaCategory::ALL {
            let n = bench.records.iter().filter(|(c, _)| *c == cat).count();
            assert_eq!(n, 10, "{}", cat.name());
        }
    }

    #[test]
    fn value_spans_cover_the_patient_name() {
        let bench = generate(2, 15);
        for (_, e) in &bench.records {
            let slot = e.cond_slot(0).unwrap();
            let (a, b) = slot.val_span.unwrap();
            assert_eq!(
                e.question[a..b].join(" "),
                slot.value.clone().unwrap(),
                "bad span in {:?}",
                e.question_text()
            );
        }
    }

    #[test]
    fn naive_mentions_schema_word_and_missing_does_not() {
        let bench = generate(3, 10);
        for (cat, e) in &bench.records {
            let sel = e.select_slot().unwrap();
            match cat {
                ParaCategory::Naive | ParaCategory::Syntactic => {
                    assert!(sel.col_span.is_some(), "{:?}", e.question_text());
                    let (a, b) = sel.col_span.unwrap();
                    let mention = e.question[a..b].join(" ");
                    let col_name =
                        e.table.schema().column(sel.column).name.to_lowercase();
                    assert_eq!(mention, col_name, "{}", e.question_text());
                }
                ParaCategory::Missing => {
                    assert!(sel.col_span.is_none(), "{:?}", e.question_text());
                }
                _ => {}
            }
        }
    }

    #[test]
    fn lexical_words_are_outside_the_lexicon_clusters() {
        let lex = nlidb_text::Lexicon::builtin();
        for rare in ["maturity", "ailment", "medic", "sojourn"] {
            assert!(
                lex.group_of(rare).is_none(),
                "{rare} unexpectedly in lexicon — lexical category would be easy"
            );
        }
    }

    #[test]
    fn queries_execute_against_the_table() {
        let bench = generate(4, 10);
        for (_, e) in &bench.records {
            let res = nlidb_storage::execute(&e.table, &e.query);
            assert!(res.is_ok());
            // Condition is on a real patient name, so results are non-empty.
            assert!(!res.unwrap().values.is_empty(), "{}", e.sql_text());
        }
    }

    #[test]
    fn patients_have_unique_names() {
        let t = patient_table(5, 12);
        let mut names: Vec<String> =
            t.column_values(0).iter().map(|v| v.canonical_text()).collect();
        names.sort();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before);
    }

    #[test]
    fn determinism() {
        let a = generate(6, 5);
        let b = generate(6, 5);
        for ((ca, ea), (cb, eb)) in a.records.iter().zip(&b.records) {
            assert_eq!(ca, cb);
            assert_eq!(ea.question, eb.question);
        }
    }
}
