//! Dataset example structures shared by all generators.

use std::sync::Arc;

use nlidb_sqlir::Query;
use nlidb_storage::Table;

/// The role a gold mention slot plays in the SQL.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlotRole {
    /// The selected column.
    Select,
    /// A condition column/value pair (index into `query.conds`).
    Cond(usize),
}

/// Gold annotation for one mention slot: which schema column it refers to
/// and where (if anywhere) the column and value are mentioned in the
/// question. `col_span == None` models implicit mentions (§III challenge
/// 3); a value whose text does not occur in the table is a counterfactual
/// mention (challenge 4).
#[derive(Debug, Clone, PartialEq)]
pub struct GoldSlot {
    /// Role in the SQL.
    pub role: SlotRole,
    /// Schema column index.
    pub column: usize,
    /// Token span `[a, b)` of the column mention, if explicit.
    pub col_span: Option<(usize, usize)>,
    /// Raw value text for condition slots.
    pub value: Option<String>,
    /// Token span `[a, b)` of the value mention, if present.
    pub val_span: Option<(usize, usize)>,
}

/// One (question, table, SQL) record with gold mention annotations.
#[derive(Debug, Clone)]
pub struct Example {
    /// Stable id within its dataset.
    pub id: usize,
    /// Question tokens (lowercased).
    pub question: Vec<String>,
    /// The table the question is asked against (shared among the table's
    /// examples).
    pub table: Arc<Table>,
    /// Gold SQL.
    pub query: Query,
    /// Gold mention slots (select slot first, then conditions in order).
    pub slots: Vec<GoldSlot>,
    /// Whether this example's SQL shape is expressible in the WikiSQL
    /// sketch (used by the OVERNIGHT transfer evaluation, §VII-B1).
    pub sketch_compatible: bool,
}

impl Example {
    /// The question as a display string.
    pub fn question_text(&self) -> String {
        self.question.join(" ")
    }

    /// The gold SQL rendered against this example's schema.
    pub fn sql_text(&self) -> String {
        self.query.to_sql(&self.table.column_names())
    }

    /// The gold slot for a given condition index, if annotated.
    pub fn cond_slot(&self, idx: usize) -> Option<&GoldSlot> {
        self.slots.iter().find(|s| s.role == SlotRole::Cond(idx))
    }

    /// The select slot.
    pub fn select_slot(&self) -> Option<&GoldSlot> {
        self.slots.iter().find(|s| s.role == SlotRole::Select)
    }
}

/// A train/dev/test dataset. Generators guarantee tables are not shared
/// across splits (the WikiSQL generalization setting).
#[derive(Debug, Clone, Default)]
pub struct Dataset {
    /// Training examples.
    pub train: Vec<Example>,
    /// Development examples.
    pub dev: Vec<Example>,
    /// Test examples.
    pub test: Vec<Example>,
}

impl Dataset {
    /// Total number of examples.
    pub fn len(&self) -> usize {
        self.train.len() + self.dev.len() + self.test.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Asserts the non-shared-tables invariant (by table name).
    pub fn splits_share_no_tables(&self) -> bool {
        use std::collections::HashSet;
        let names = |xs: &[Example]| -> HashSet<String> {
            xs.iter().map(|e| e.table.name.clone()).collect()
        };
        let tr = names(&self.train);
        let dv = names(&self.dev);
        let te = names(&self.test);
        tr.is_disjoint(&dv) && tr.is_disjoint(&te) && dv.is_disjoint(&te)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nlidb_storage::{Column, DataType, Schema};

    fn example(table_name: &str) -> Example {
        let schema = Schema::new(vec![Column::new("A", DataType::Text)]);
        Example {
            id: 0,
            question: vec!["what".into(), "is".into(), "a".into(), "?".into()],
            table: Arc::new(Table::new(table_name, schema)),
            query: Query::select(0),
            slots: vec![GoldSlot {
                role: SlotRole::Select,
                column: 0,
                col_span: Some((2, 3)),
                value: None,
                val_span: None,
            }],
            sketch_compatible: true,
        }
    }

    #[test]
    fn accessors() {
        let e = example("t1");
        assert_eq!(e.question_text(), "what is a ?");
        assert_eq!(e.sql_text(), "SELECT A");
        assert!(e.select_slot().is_some());
        assert!(e.cond_slot(0).is_none());
    }

    #[test]
    fn disjointness_check() {
        let ds = Dataset {
            train: vec![example("t1")],
            dev: vec![example("t2")],
            test: vec![example("t3")],
        };
        assert!(ds.splits_share_no_tables());
        let bad = Dataset {
            train: vec![example("t1")],
            dev: vec![example("t1")],
            test: vec![],
        };
        assert!(!bad.splits_share_no_tables());
    }
}
