//! OVERNIGHT-style cross-domain corpus (§VII-B1 zero-shot transfer).
//!
//! Five sub-domains (basketball, calendar, housing, recipes, restaurants)
//! with their own schemas, vocabularies, and question styles distinct from
//! the WikiSQL generator. Sub-domains differ in how much of their mention
//! vocabulary overlaps the built-in lexicon (the stand-in for GloVe
//! neighborhoods): basketball leans on jargon ("hooper", "boards") and
//! heavy implicit mentions, housing on rental jargon, while calendar,
//! recipes, and restaurants use common words — reproducing the paper's
//! spread of per-domain transfer accuracy (39.7%–81.8%).

use std::sync::Arc;

use nlidb_tensor::Rng;

use crate::domains::{ColumnArchetype, Domain};
use crate::example::{Dataset, Example, GoldSlot};
use crate::question::{realize_question, NoiseConfig};
use crate::values::ValueKind;
use crate::wikisql::{gen_query, gen_table_from_domain};

macro_rules! arch {
    ($names:expr, $kind:expr, $mentions:expr, $paras:expr, $implicit:expr) => {
        ColumnArchetype {
            names: $names,
            kind: $kind,
            mentions: $mentions,
            paraphrases: $paras,
            implicit_ok: $implicit,
        }
    };
}

const BASKETBALL: Domain = Domain {
    name: "basketball",
    columns: &[
        arch!(&["Player"], ValueKind::PersonName, &["hooper", "baller"], &[], true),
        arch!(&["Team"], ValueKind::Team, &["squad", "franchise"], &["suits up for"], true),
        arch!(&["Points"], ValueKind::SmallInt, &["buckets", "points"], &["put up"], false),
        arch!(&["Rebounds"], ValueKind::SmallInt, &["boards", "rebounds"], &["pulled down"], false),
        arch!(&["Season"], ValueKind::Year, &["campaign", "season"], &[], true),
        arch!(&["Position"], ValueKind::SportPosition, &["spot", "position"], &[], true),
    ],
};

const CALENDAR: Domain = Domain {
    name: "calendar",
    columns: &[
        arch!(&["Meeting"], ValueKind::Title, &["meeting", "appointment"], &[], false),
        arch!(&["Organizer"], ValueKind::PersonName, &["organizer", "host"], &["set up by"], true),
        arch!(&["Date"], ValueKind::DateText, &["date", "when", "scheduled"], &["scheduled for"], true),
        arch!(&["Duration Minutes"], ValueKind::SmallInt, &["duration", "minutes", "time"], &["how long is"], false),
        arch!(&["Room"], ValueKind::Place, &["room", "location", "where"], &["takes place in"], true),
    ],
};

const HOUSING: Domain = Domain {
    name: "housing",
    columns: &[
        arch!(&["Listing"], ValueKind::Title, &["listing", "unit"], &[], false),
        arch!(&["Neighborhood"], ValueKind::Place, &["neighborhood", "area"], &[], true),
        arch!(&["Rent"], ValueKind::Money, &["rent", "lease"], &["monthly payment for"], false),
        arch!(&["Bedrooms"], ValueKind::SmallInt, &["bedrooms", "rooms"], &[], false),
        arch!(&["Posted Year"], ValueKind::Year, &["posted", "listed"], &["went on the market in"], true),
    ],
};

const RECIPES: Domain = Domain {
    name: "recipes",
    columns: &[
        arch!(&["Recipe"], ValueKind::Food, &["recipe", "dish", "meal"], &[], false),
        arch!(&["Cuisine"], ValueKind::Nationality, &["cuisine", "origin"], &["comes from"], true),
        arch!(&["Cook Minutes"], ValueKind::SmallInt, &["minutes", "time", "duration"], &["how long does it take"], false),
        arch!(&["Calories"], ValueKind::BigInt, &["calories", "energy"], &["how many calories"], false),
        arch!(&["Chef"], ValueKind::PersonName, &["chef", "author"], &["created by"], true),
    ],
};

const RESTAURANTS: Domain = Domain {
    name: "restaurants",
    columns: &[
        arch!(&["Restaurant"], ValueKind::Title, &["restaurant", "diner", "eatery"], &[], false),
        arch!(&["City"], ValueKind::Place, &["city", "location", "where"], &["located in"], true),
        arch!(&["Cuisine"], ValueKind::Food, &["cuisine", "dish", "specialty"], &["known for"], true),
        arch!(&["Rating"], ValueKind::SmallInt, &["rating", "stars"], &["how well rated"], false),
        arch!(&["Price"], ValueKind::Money, &["price", "cost"], &["how much does it cost"], false),
    ],
};

/// One OVERNIGHT sub-domain: its schema/grammar plus per-domain noise.
#[derive(Debug, Clone, Copy)]
pub struct SubDomain {
    /// The schema/vocabulary definition.
    pub domain: &'static Domain,
    /// Question-noise rates (difficulty lever).
    pub noise: NoiseConfig,
    /// Rate of sketch-incompatible records (discarded in transfer eval,
    /// as in the paper).
    pub incompatible_rate: f32,
}

/// All five sub-domains in the paper's Table IV(a) order.
pub fn subdomains() -> Vec<SubDomain> {
    vec![
        SubDomain {
            domain: &BASKETBALL,
            noise: NoiseConfig {
                synonym_rate: 0.85,
                paraphrase_rate: 0.4,
                implicit_rate: 0.6,
                morph_rate: 0.3,
                inverted_rate: 0.2,
            },
            incompatible_rate: 0.25,
        },
        SubDomain {
            domain: &CALENDAR,
            noise: NoiseConfig {
                synonym_rate: 0.35,
                paraphrase_rate: 0.15,
                implicit_rate: 0.2,
                morph_rate: 0.08,
                inverted_rate: 0.1,
            },
            incompatible_rate: 0.1,
        },
        SubDomain {
            domain: &HOUSING,
            noise: NoiseConfig {
                synonym_rate: 0.6,
                paraphrase_rate: 0.35,
                implicit_rate: 0.5,
                morph_rate: 0.22,
                inverted_rate: 0.18,
            },
            incompatible_rate: 0.2,
        },
        SubDomain {
            domain: &RECIPES,
            noise: NoiseConfig {
                synonym_rate: 0.3,
                paraphrase_rate: 0.1,
                implicit_rate: 0.12,
                morph_rate: 0.05,
                inverted_rate: 0.08,
            },
            incompatible_rate: 0.1,
        },
        SubDomain {
            domain: &RESTAURANTS,
            noise: NoiseConfig {
                synonym_rate: 0.3,
                paraphrase_rate: 0.15,
                implicit_rate: 0.18,
                morph_rate: 0.08,
                inverted_rate: 0.1,
            },
            incompatible_rate: 0.12,
        },
    ]
}

/// Generator configuration.
#[derive(Debug, Clone)]
pub struct OvernightConfig {
    /// Master seed.
    pub seed: u64,
    /// Tables per sub-domain split.
    pub tables_per_split: usize,
    /// Questions per table.
    pub questions_per_table: usize,
}

impl Default for OvernightConfig {
    fn default() -> Self {
        OvernightConfig { seed: 4242, tables_per_split: 10, questions_per_table: 16 }
    }
}

impl OvernightConfig {
    /// Tiny configuration for unit tests.
    pub fn tiny(seed: u64) -> Self {
        OvernightConfig { seed, tables_per_split: 2, questions_per_table: 4 }
    }
}

/// Shifts all slot spans right by `k` after prepending `k` tokens.
fn shift_slots(slots: &mut [GoldSlot], k: usize) {
    for s in slots {
        if let Some((a, b)) = s.col_span {
            s.col_span = Some((a + k, b + k));
        }
        if let Some((a, b)) = s.val_span {
            s.val_span = Some((a + k, b + k));
        }
    }
}

const STYLE_PREFIXES: &[&str] = &["show me", "list", "find", "i want to know", "give me"];

fn gen_domain_split(
    sub: &SubDomain,
    split: &str,
    cfg: &OvernightConfig,
    rng: &mut Rng,
    next_id: &mut usize,
) -> Vec<Example> {
    let mut out = Vec::new();
    for t in 0..cfg.tables_per_split {
        let gt = gen_table_from_domain(
            sub.domain,
            &format!("{}_{split}_{t}", sub.domain.name),
            rng,
            (4, 8),
        );
        let names = gt.table.column_names();
        for _ in 0..cfg.questions_per_table {
            let query = gen_query(&gt, 0.1, rng);
            let (mut question, mut slots) =
                realize_question(&gt.archetypes, &names, &query, &sub.noise, rng);
            // OVERNIGHT's crowd-sourced style: imperative openers.
            if rng.gen::<f32>() < 0.6 {
                let prefix = STYLE_PREFIXES[rng.gen_range(0..STYLE_PREFIXES.len())];
                let prefix_toks = nlidb_text::tokenize(prefix);
                shift_slots(&mut slots, prefix_toks.len());
                let mut toks = prefix_toks;
                toks.extend(question);
                question = toks;
            }
            let sketch_compatible = rng.gen::<f32>() >= sub.incompatible_rate;
            if !sketch_compatible {
                // Mimic OVERNIGHT's richer logical forms (sorting,
                // superlatives over groups) that the WikiSQL sketch cannot
                // express; these records are flagged and discarded by the
                // transfer evaluation exactly as in the paper.
                question.insert(question.len() - 1, "sorted".to_string());
                question.insert(question.len() - 1, "by".to_string());
                question.insert(question.len() - 1, "name".to_string());
            }
            out.push(Example {
                id: *next_id,
                question,
                table: Arc::clone(&gt.table),
                query,
                slots,
                sketch_compatible,
            });
            *next_id += 1;
        }
    }
    out
}

/// The generated OVERNIGHT corpus: one [`Dataset`] per sub-domain
/// (train/test; dev left empty).
#[derive(Debug, Clone)]
pub struct OvernightData {
    /// `(sub-domain name, dataset)` pairs in Table IV(a) order.
    pub domains: Vec<(String, Dataset)>,
}

/// Generates all five sub-domains.
pub fn generate(cfg: &OvernightConfig) -> OvernightData {
    let mut rng = Rng::seed_from_u64(cfg.seed);
    let mut next_id = 0;
    let mut domains = Vec::new();
    for sub in subdomains() {
        let train = gen_domain_split(&sub, "train", cfg, &mut rng, &mut next_id);
        let test = gen_domain_split(&sub, "test", cfg, &mut rng, &mut next_id);
        domains.push((
            sub.domain.name.to_string(),
            Dataset { train, dev: Vec::new(), test },
        ));
    }
    OvernightData { domains }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_subdomains_in_paper_order() {
        let data = generate(&OvernightConfig::tiny(1));
        let names: Vec<&str> = data.domains.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["basketball", "calendar", "housing", "recipes", "restaurants"]);
    }

    #[test]
    fn each_domain_has_disjoint_tables() {
        let data = generate(&OvernightConfig::tiny(2));
        for (name, ds) in &data.domains {
            assert!(ds.splits_share_no_tables(), "{name} shares tables");
            assert!(!ds.train.is_empty() && !ds.test.is_empty());
        }
    }

    #[test]
    fn incompatible_examples_are_flagged() {
        let data = generate(&OvernightConfig::tiny(3));
        let mut any_incompatible = false;
        for (_, ds) in &data.domains {
            for e in ds.train.iter().chain(&ds.test) {
                if !e.sketch_compatible {
                    any_incompatible = true;
                    let text = e.question_text();
                    assert!(text.contains("sorted by"), "{text}");
                }
            }
        }
        assert!(any_incompatible, "expected some incompatible records");
    }

    #[test]
    fn prefix_shift_keeps_spans_aligned() {
        let data = generate(&OvernightConfig::tiny(4));
        for (_, ds) in &data.domains {
            for e in ds.train.iter().chain(&ds.test) {
                for s in &e.slots {
                    if let (Some(v), Some((a, b))) = (&s.value, s.val_span) {
                        assert_eq!(
                            &e.question[a..b],
                            nlidb_text::tokenize(v).as_slice(),
                            "span drift in {:?}",
                            e.question_text()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn basketball_vocabulary_is_jargon_heavy() {
        // The hard domain should frequently use words outside the built-in
        // lexicon clusters ("hooper", "boards", ...).
        let lex = nlidb_text::Lexicon::builtin();
        let data = generate(&OvernightConfig::tiny(5));
        let (name, ds) = &data.domains[0];
        assert_eq!(name, "basketball");
        let mut jargon = 0;
        for e in &ds.train {
            for w in ["hooper", "baller", "boards", "buckets", "squad", "campaign"] {
                if e.question.iter().any(|t| t == w) {
                    jargon += 1;
                }
            }
        }
        assert!(jargon > 0, "no jargon found in basketball questions");
        assert!(lex.group_of("hooper").is_none(), "jargon should be OOV to the lexicon");
    }

    #[test]
    fn determinism() {
        let a = generate(&OvernightConfig::tiny(6));
        let b = generate(&OvernightConfig::tiny(6));
        for ((na, da), (nb, db)) in a.domains.iter().zip(&b.domains) {
            assert_eq!(na, nb);
            for (x, y) in da.train.iter().zip(&db.train) {
                assert_eq!(x.question, y.question);
            }
        }
    }
}
