//! # nlidb-data
//!
//! Synthetic corpus generators standing in for the paper's datasets (see
//! DESIGN.md §1 for the substitution rationale):
//!
//! - [`wikisql`] — WikiSQL-shaped multi-domain corpus with non-shared
//!   tables across splits and all five §III question-understanding
//!   challenges as rate-controlled noise channels.
//! - [`overnight`] — five OVERNIGHT-style sub-domains with distinct
//!   vocabularies and question styles for the zero-shot transfer
//!   evaluation (Table IV(a)).
//! - [`paraphrase`] — ParaphraseBench-style six-way linguistic-variation
//!   benchmark (Table IV(b)).
//! - [`domains`] / [`values`] — the domain archetype library and typed
//!   value generators they share.
//! - [`example`] — the [`example::Example`] record with gold mention-span
//!   annotations used to train and evaluate mention detection.
//! - [`question`] — the span-tracking question realization engine.
//! - [`shard`] / [`stream`] — dbgen-style sharded corpus generation
//!   (each shard a pure function of `(seed, shard_index)`) and the
//!   bounded-memory disk pipeline: parallel shard writers and the
//!   shard-at-a-time [`stream::CorpusReader`] for out-of-core training.
//!
//! Every corpus is a pure function of a `u64` seed.

#![warn(missing_docs)]

pub mod domains;
pub mod example;
pub mod export;
pub mod overnight;
pub mod paraphrase;
pub mod question;
pub mod shard;
pub mod stats;
pub mod stream;
pub mod values;
pub mod wikisql;

pub use example::{Dataset, Example, GoldSlot, SlotRole};
pub use question::{NoiseConfig, TemplatePlan};
pub use export::{from_jsonl, to_jsonl, ExportRecord, JsonlWriter};
pub use shard::{CorpusPlan, ShardSpec, ShardedCorpusConfig, Split};
pub use stats::{corpus_stats, CorpusStats};
pub use stream::{
    example_from_record, load_split, write_corpus, CorpusManifest, CorpusReader,
    ExampleSource, InMemorySource, ResidencyGauge, ShardLease, SplitSource, StreamError,
};
pub use wikisql::{GenTable, WikiSqlConfig};
