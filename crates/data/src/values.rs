//! Typed synthetic value generators.
//!
//! Every cell value in the generated corpora comes from a [`ValueKind`]
//! generator, which is also used to produce *counterfactual* values —
//! values of the right shape that do not occur in the table (§III
//! challenge 4: "When was Joe Biden elected U.S. president?").

use nlidb_storage::{DataType, Value};
use nlidb_tensor::Rng;

/// The kind of values a column holds, driving both cell generation and
/// counterfactual sampling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ValueKind {
    /// "Jerzy Antczak"-style person names.
    PersonName,
    /// City/town names.
    Place,
    /// Sports team names.
    Team,
    /// Work titles (films, songs, books) — multi-word.
    Title,
    /// Genres/categories.
    Genre,
    /// Country-of-origin adjectives.
    Nationality,
    /// Sports positions.
    SportPosition,
    /// Medical conditions.
    Disease,
    /// Dishes and foods.
    Food,
    /// School/university names.
    School,
    /// Political parties.
    Party,
    /// Languages.
    Language,
    /// Venue/stadium names.
    Venue,
    /// Calendar years.
    Year,
    /// Small integers (scores, ranks, counts per row).
    SmallInt,
    /// Larger integers (populations, attendance).
    BigInt,
    /// Monetary amounts.
    Money,
    /// Percentages rendered as text like `64%`.
    Percent,
    /// Dates rendered as "November 16, 2006".
    DateText,
}

const FIRST_NAMES: &[&str] = &[
    "piotr", "jerzy", "levan", "nana", "maria", "james", "sofia", "diego", "aiko", "omar",
    "ingrid", "pavel", "lucia", "henrik", "amara", "tomasz", "keiko", "bruno", "elif", "marta",
    "oscar", "freya", "anton", "zara", "mikel", "dana", "ravi", "nora", "felix", "ida",
];

const LAST_NAMES: &[&str] = &[
    "adamczyk", "antczak", "uchaneishvili", "djordjadze", "kowalski", "fernandez", "tanaka",
    "haddad", "lindqvist", "novak", "moreau", "silva", "petrov", "okafor", "berg", "costa",
    "yamada", "kaya", "duarte", "holm", "varga", "reyes", "fontaine", "klein", "bianchi",
    "soto", "larsen", "ivanov", "mendes", "aoki",
];

const PLACES: &[&str] = &[
    "mayo", "galway", "toronto", "kraków", "lisbon", "oslo", "kyoto", "valencia", "tbilisi",
    "porto", "dublin", "gdansk", "bergen", "osaka", "seville", "batumi", "cork", "lodz",
    "trondheim", "nagoya", "granada", "kutaisi", "limerick", "poznan", "stavanger",
];

const TEAM_WORDS: &[(&str, &str)] = &[
    ("northern", "ravens"), ("coastal", "wolves"), ("river", "hawks"), ("golden", "lions"),
    ("iron", "bulls"), ("silver", "eagles"), ("mountain", "bears"), ("valley", "sharks"),
    ("royal", "tigers"), ("crimson", "falcons"), ("arctic", "foxes"), ("desert", "storm"),
];

const TITLE_HEADS: &[&str] = &[
    "desire", "kisses", "shadow", "journey", "echo", "harvest", "winter", "garden", "mirror",
    "voyage", "silence", "ember", "lantern", "horizon", "orchard", "tide", "monsoon", "aurora",
];

const TITLE_TAILS: &[&str] = &[
    "of love", "of stone", "for two", "at dawn", "in exile", "of the north", "by the sea",
    "of memory", "at midnight", "in bloom", "of glass", "under rain",
];

const GENRES: &[&str] = &[
    "drama", "comedy", "thriller", "documentary", "romance", "animation", "horror", "western",
    "musical", "biography", "noir", "adventure",
];

const NATIONALITIES: &[&str] = &[
    "polish", "georgian", "irish", "japanese", "spanish", "norwegian", "portuguese",
    "brazilian", "turkish", "nigerian", "french", "italian", "swedish", "mexican",
];

const SPORT_POSITIONS: &[&str] =
    &["forward", "guard", "center", "goalkeeper", "midfielder", "defender", "striker", "winger"];

const DISEASES: &[&str] = &[
    "asthma", "diabetes", "hypertension", "migraine", "arthritis", "bronchitis", "anemia",
    "eczema", "insomnia", "vertigo",
];

const FOODS: &[&str] = &[
    "bigos", "khachapuri", "paella", "ramen", "bacalhau", "pierogi", "lefse", "tiramisu",
    "dolma", "empanada", "gazpacho", "goulash",
];

const SCHOOL_HEADS: &[&str] =
    &["auburn", "stony brook", "riverside", "hillcrest", "oakwood", "lakeshore", "maple grove"];

const PARTIES: &[&str] =
    &["unity party", "green alliance", "civic forum", "labor front", "liberal union", "reform bloc"];

const LANGUAGES: &[&str] = &[
    "irish", "polish", "georgian", "basque", "welsh", "catalan", "frisian", "sami", "breton",
    "galician",
];

const VENUE_HEADS: &[&str] =
    &["riverside", "crescent", "meridian", "pinnacle", "harbor", "summit", "centennial"];

const VENUE_TAILS: &[&str] = &["stadium", "arena", "park", "field", "dome", "grounds"];

const MONTHS: &[&str] = &[
    "january", "february", "march", "april", "may", "june", "july", "august", "september",
    "october", "november", "december",
];

fn pick<'a>(rng: &mut Rng, list: &'a [&'a str]) -> &'a str {
    list[rng.gen_range(0..list.len())]
}

impl ValueKind {
    /// The storage type of cells this kind generates.
    pub fn dtype(self) -> DataType {
        match self {
            ValueKind::Year | ValueKind::SmallInt | ValueKind::BigInt => DataType::Int,
            ValueKind::Money => DataType::Float,
            _ => DataType::Text,
        }
    }

    /// Generates one value.
    pub fn generate(self, rng: &mut Rng) -> Value {
        match self {
            ValueKind::PersonName => {
                Value::Text(format!("{} {}", pick(rng, FIRST_NAMES), pick(rng, LAST_NAMES)))
            }
            ValueKind::Place => Value::Text(pick(rng, PLACES).to_string()),
            ValueKind::Team => {
                let (a, b) = TEAM_WORDS[rng.gen_range(0..TEAM_WORDS.len())];
                Value::Text(format!("{a} {b}"))
            }
            ValueKind::Title => {
                Value::Text(format!("{} {}", pick(rng, TITLE_HEADS), pick(rng, TITLE_TAILS)))
            }
            ValueKind::Genre => Value::Text(pick(rng, GENRES).to_string()),
            ValueKind::Nationality => Value::Text(pick(rng, NATIONALITIES).to_string()),
            ValueKind::SportPosition => Value::Text(pick(rng, SPORT_POSITIONS).to_string()),
            ValueKind::Disease => Value::Text(pick(rng, DISEASES).to_string()),
            ValueKind::Food => Value::Text(pick(rng, FOODS).to_string()),
            ValueKind::School => {
                Value::Text(format!("{} university", pick(rng, SCHOOL_HEADS)))
            }
            ValueKind::Party => Value::Text(pick(rng, PARTIES).to_string()),
            ValueKind::Language => Value::Text(pick(rng, LANGUAGES).to_string()),
            ValueKind::Venue => {
                Value::Text(format!("{} {}", pick(rng, VENUE_HEADS), pick(rng, VENUE_TAILS)))
            }
            ValueKind::Year => Value::Int(rng.gen_range(1950..=2020)),
            ValueKind::SmallInt => Value::Int(rng.gen_range(0..=60)),
            ValueKind::BigInt => Value::Int(rng.gen_range(100..=20_000)),
            ValueKind::Money => Value::Float((rng.gen_range(10..=900) * 100) as f64 / 10.0),
            ValueKind::Percent => Value::Text(format!("{}%", rng.gen_range(1..=99))),
            ValueKind::DateText => Value::Text(format!(
                "{} {}, {}",
                pick(rng, MONTHS),
                rng.gen_range(1..=28),
                rng.gen_range(1990..=2020)
            )),
        }
    }

    /// Generates a value guaranteed (by rejection) to differ from every
    /// value in `existing` — a counterfactual mention.
    pub fn generate_counterfactual(self, rng: &mut Rng, existing: &[Value]) -> Value {
        for _ in 0..64 {
            let v = self.generate(rng);
            let canon = v.canonical_text();
            if !existing.iter().any(|e| e.canonical_text() == canon) {
                return v;
            }
        }
        // Value space exhausted (tiny lists + many rows): mutate numerically
        // or append a suffix to force freshness.
        match self.generate(rng) {
            Value::Int(i) => Value::Int(i + 100_000),
            Value::Float(f) => Value::Float(f + 99_999.5),
            Value::Text(t) => Value::Text(format!("{t} the second")),
            Value::Null => Value::Null,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> Rng {
        Rng::seed_from_u64(17)
    }

    #[test]
    fn generated_values_match_declared_dtype() {
        let mut r = rng();
        let kinds = [
            ValueKind::PersonName,
            ValueKind::Place,
            ValueKind::Team,
            ValueKind::Title,
            ValueKind::Year,
            ValueKind::SmallInt,
            ValueKind::BigInt,
            ValueKind::Money,
            ValueKind::Percent,
            ValueKind::DateText,
        ];
        for kind in kinds {
            for _ in 0..20 {
                let v = kind.generate(&mut r);
                match kind.dtype() {
                    DataType::Int => assert!(matches!(v, Value::Int(_)), "{kind:?} -> {v:?}"),
                    DataType::Float => assert!(matches!(v, Value::Float(_)), "{kind:?} -> {v:?}"),
                    DataType::Text => assert!(matches!(v, Value::Text(_)), "{kind:?} -> {v:?}"),
                }
            }
        }
    }

    #[test]
    fn person_names_are_two_tokens() {
        let mut r = rng();
        for _ in 0..10 {
            if let Value::Text(t) = ValueKind::PersonName.generate(&mut r) {
                assert_eq!(t.split(' ').count(), 2);
            }
        }
    }

    #[test]
    fn years_are_in_range() {
        let mut r = rng();
        for _ in 0..50 {
            if let Value::Int(y) = ValueKind::Year.generate(&mut r) {
                assert!((1950..=2020).contains(&y));
            }
        }
    }

    #[test]
    fn counterfactual_avoids_existing() {
        let mut r = rng();
        let existing: Vec<Value> = (0..10).map(|_| ValueKind::Place.generate(&mut r)).collect();
        for _ in 0..20 {
            let cf = ValueKind::Place.generate_counterfactual(&mut r, &existing);
            assert!(
                !existing.iter().any(|e| e.canonical_text() == cf.canonical_text()),
                "counterfactual {cf:?} collides"
            );
        }
    }

    #[test]
    fn counterfactual_fallback_when_space_exhausted() {
        let mut r = rng();
        // Exhaust the whole genre list.
        let existing: Vec<Value> = GENRES.iter().map(|g| Value::Text(g.to_string())).collect();
        let cf = ValueKind::Genre.generate_counterfactual(&mut r, &existing);
        assert!(!existing.iter().any(|e| e.canonical_text() == cf.canonical_text()));
    }

    #[test]
    fn generation_is_seed_deterministic() {
        let a: Vec<Value> = {
            let mut r = Rng::seed_from_u64(5);
            (0..10).map(|_| ValueKind::Title.generate(&mut r)).collect()
        };
        let b: Vec<Value> = {
            let mut r = Rng::seed_from_u64(5);
            (0..10).map(|_| ValueKind::Title.generate(&mut r)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn percent_values_parse_shape() {
        let mut r = rng();
        if let Value::Text(t) = ValueKind::Percent.generate(&mut r) {
            assert!(t.ends_with('%'));
            assert!(t[..t.len() - 1].parse::<u32>().is_ok());
        }
    }
}
