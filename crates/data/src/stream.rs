//! Bounded-memory corpus disk pipeline: parallel shard writers and a
//! shard-at-a-time reader for out-of-core training.
//!
//! [`write_corpus`] fans the shards of a [`CorpusPlan`] out over the
//! worker pool; each worker generates its shard and streams it through a
//! bounded [`JsonlWriter`](crate::export::JsonlWriter) into its own
//! `{split}-{index:05}.jsonl` file, so the file bytes are identical for
//! any thread count and no more than one shard per worker is ever
//! resident. A `manifest.json` written last records the shard layout.
//!
//! [`CorpusReader`] streams the corpus back: one shard at a time, each
//! returned as a [`ShardLease`] whose drop releases its examples from
//! the shared [`ResidencyGauge`] — the gauge's peak proves the
//! out-of-core bound (peak resident examples ≤ largest shard). Tables
//! are deduplicated by content fingerprint into a bounded `Arc<Table>`
//! pool so the examples of one table share a single allocation, exactly
//! as they do in the in-memory generator.
//!
//! Training consumes either path through the [`ExampleSource`] trait:
//! [`SplitSource`] (disk) and [`InMemorySource`] (generated) yield the
//! same shards in the same order, which is what makes streamed training
//! byte-identical to in-memory training.

use std::collections::{BTreeMap, VecDeque};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use nlidb_json::{FromJson, Json, JsonError, ToJson};
use nlidb_storage::{Column, DataType, Schema, Table, Value};
use nlidb_tensor::pool;

use crate::example::{Example, GoldSlot, SlotRole};
use crate::export::{ExportRecord, JsonlWriter};
use crate::shard::{CorpusPlan, Split};

/// Manifest file name inside a corpus directory. Written after every
/// shard file, so its presence marks a complete corpus.
pub const MANIFEST_FILE: &str = "manifest.json";

/// Errors from the corpus disk pipeline.
#[derive(Debug)]
pub enum StreamError {
    /// Filesystem error.
    Io(std::io::Error),
    /// Malformed JSON in a shard or manifest file.
    Json(JsonError),
    /// Structurally valid JSON that does not describe a valid corpus
    /// (unknown dtype, unparsable cell, shard/manifest mismatch, ...).
    Format(String),
}

impl std::fmt::Display for StreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamError::Io(e) => write!(f, "io error: {e}"),
            StreamError::Json(e) => write!(f, "json error: {}", e.message()),
            StreamError::Format(m) => write!(f, "format error: {m}"),
        }
    }
}

impl std::error::Error for StreamError {}

impl From<std::io::Error> for StreamError {
    fn from(e: std::io::Error) -> Self {
        StreamError::Io(e)
    }
}

impl From<JsonError> for StreamError {
    fn from(e: JsonError) -> Self {
        StreamError::Json(e)
    }
}

/// One shard's entry in the corpus manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardMeta {
    /// Shard file name, relative to the corpus directory.
    pub file: String,
    /// Split name (`train` / `dev` / `test`).
    pub split: String,
    /// Global shard index (also the shard's PRNG stream).
    pub index: usize,
    /// Examples in the shard.
    pub examples: usize,
}

/// The corpus manifest: seed plus the shard layout, in corpus order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorpusManifest {
    /// The corpus seed (informational; shard files are self-contained).
    pub seed: u64,
    /// Total examples across all shards.
    pub examples: usize,
    /// Shard entries, ordered by global shard index.
    pub shards: Vec<ShardMeta>,
}

impl ToJson for ShardMeta {
    fn to_json(&self) -> Json {
        Json::obj([
            ("file", self.file.to_json()),
            ("split", self.split.to_json()),
            ("index", self.index.to_json()),
            ("examples", self.examples.to_json()),
        ])
    }
}

impl FromJson for ShardMeta {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        Ok(ShardMeta {
            file: j.req("file")?,
            split: j.req("split")?,
            index: j.req("index")?,
            examples: j.req("examples")?,
        })
    }
}

impl ToJson for CorpusManifest {
    fn to_json(&self) -> Json {
        Json::obj([
            ("seed", self.seed.to_json()),
            ("examples", self.examples.to_json()),
            ("shards", self.shards.to_json()),
        ])
    }
}

impl FromJson for CorpusManifest {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        Ok(CorpusManifest {
            seed: j.req("seed")?,
            examples: j.req("examples")?,
            shards: j.req("shards")?,
        })
    }
}

/// Shard file name for `(split, global_index)`.
pub fn shard_file_name(split: Split, index: usize) -> String {
    format!("{}-{:05}.jsonl", split.name(), index)
}

/// Generates every shard of `plan` and streams them to `dir` (created if
/// missing), fanning out over the worker pool. Each shard is generated
/// and written by exactly one worker through a bounded writer, so file
/// bytes are identical for any thread count and peak memory is bounded
/// by one shard per worker. Writes `manifest.json` last.
pub fn write_corpus(plan: &CorpusPlan, dir: &Path) -> Result<CorpusManifest, StreamError> {
    std::fs::create_dir_all(dir)?;
    let specs = plan.shards();
    let mut results: Vec<Option<Result<ShardMeta, StreamError>>> =
        (0..specs.len()).map(|_| None).collect();
    pool::parallel_for_chunks(&mut results, 1, |i, slot| {
        let spec = &specs[i];
        let write = || -> Result<ShardMeta, StreamError> {
            let file = shard_file_name(spec.split, spec.index);
            let sink = std::fs::File::create(dir.join(&file))?;
            let mut w = JsonlWriter::new(sink);
            for e in plan.gen_shard(spec.index) {
                w.write_example(&e)?;
            }
            let records = w.records();
            w.finish()?;
            Ok(ShardMeta {
                file,
                split: spec.split.name().to_string(),
                index: spec.index,
                examples: records,
            })
        };
        slot[0] = Some(write());
    });
    let mut shards = Vec::with_capacity(specs.len());
    for r in results {
        shards.push(r.expect("every shard slot is filled")?);
    }
    let manifest = CorpusManifest {
        seed: plan.config().base.seed,
        examples: shards.iter().map(|s| s.examples).sum(),
        shards,
    };
    std::fs::write(dir.join(MANIFEST_FILE), manifest.to_json().to_string())?;
    Ok(manifest)
}

/// Shared gauge of resident streamed examples: `current` counts the
/// examples held by live [`ShardLease`]s, `peak` the high-water mark.
/// The peak is how the verify smoke asserts the out-of-core bound.
#[derive(Debug, Clone, Default)]
pub struct ResidencyGauge {
    inner: Arc<GaugeInner>,
}

#[derive(Debug, Default)]
struct GaugeInner {
    current: AtomicUsize,
    peak: AtomicUsize,
}

impl ResidencyGauge {
    /// A fresh gauge at zero.
    pub fn new() -> Self {
        ResidencyGauge::default()
    }

    /// Examples currently resident under leases on this gauge.
    pub fn current(&self) -> usize {
        // lint:allow(atomic-ordering): residency gauge; counters guard no other memory, and the residency tests read them after joining the workers.
        self.inner.current.load(Ordering::Relaxed)
    }

    /// High-water mark of [`Self::current`].
    pub fn peak(&self) -> usize {
        // lint:allow(atomic-ordering): same gauge argument as `current` above.
        self.inner.peak.load(Ordering::Relaxed)
    }

    fn add(&self, n: usize) {
        // lint:allow(atomic-ordering): fetch_add/fetch_max are atomic RMWs, so counts and the high-water mark stay exact under any interleaving; ordering would only matter if the gauge published other memory, which it does not.
        let now = self.inner.current.fetch_add(n, Ordering::Relaxed) + n;
        // lint:allow(atomic-ordering): same RMW argument as the line above.
        self.inner.peak.fetch_max(now, Ordering::Relaxed);
    }

    fn sub(&self, n: usize) {
        // lint:allow(atomic-ordering): same RMW argument as `add` above.
        self.inner.current.fetch_sub(n, Ordering::Relaxed);
    }
}

/// One loaded shard: the examples plus a registration on the source's
/// [`ResidencyGauge`] that is released when the lease drops. Derefs to
/// `[Example]`.
pub struct ShardLease {
    examples: Vec<Example>,
    gauge: ResidencyGauge,
}

impl ShardLease {
    /// Wraps `examples`, registering them on `gauge`.
    pub fn new(examples: Vec<Example>, gauge: ResidencyGauge) -> Self {
        gauge.add(examples.len());
        ShardLease { examples, gauge }
    }

    /// The shard's examples.
    pub fn examples(&self) -> &[Example] {
        &self.examples
    }
}

impl std::ops::Deref for ShardLease {
    type Target = [Example];
    fn deref(&self) -> &[Example] {
        &self.examples
    }
}

impl Drop for ShardLease {
    fn drop(&mut self) {
        self.gauge.sub(self.examples.len());
    }
}

/// A shard-addressable stream of examples — the unit the out-of-core
/// training loops consume. Implemented by [`SplitSource`] (disk) and
/// [`InMemorySource`] (generated); both yield the same shards in the
/// same order for the same plan, which is what makes streamed training
/// byte-identical to in-memory training.
pub trait ExampleSource {
    /// Number of shards.
    fn num_shards(&self) -> usize;
    /// Total examples across all shards.
    fn num_examples(&self) -> usize;
    /// Loads shard `shard` (source-local index).
    fn load_shard(&mut self, shard: usize) -> Result<ShardLease, StreamError>;
    /// The gauge leases from this source register on.
    fn gauge(&self) -> ResidencyGauge;
}

fn parse_dtype(s: &str) -> Result<DataType, StreamError> {
    match s {
        "text" => Ok(DataType::Text),
        "int" => Ok(DataType::Int),
        "float" => Ok(DataType::Float),
        other => Err(StreamError::Format(format!("unknown dtype '{other}'"))),
    }
}

fn parse_cell(cell: &str, dtype: DataType) -> Result<Value, StreamError> {
    if cell == "NULL" {
        return Ok(Value::Null);
    }
    match dtype {
        DataType::Text => Ok(Value::Text(cell.to_string())),
        DataType::Int => cell
            .parse::<i64>()
            .map(Value::Int)
            .map_err(|_| StreamError::Format(format!("'{cell}' is not an int cell"))),
        // Cells are written with Rust's shortest-roundtrip float display,
        // so parsing back reproduces the exact bits.
        DataType::Float => cell
            .parse::<f64>()
            .map(Value::Float)
            .map_err(|_| StreamError::Format(format!("'{cell}' is not a float cell"))),
    }
}

fn parse_role(role: &str) -> Result<SlotRole, StreamError> {
    if role == "select" {
        return Ok(SlotRole::Select);
    }
    role.strip_prefix("cond")
        .and_then(|i| i.parse::<usize>().ok())
        .map(SlotRole::Cond)
        .ok_or_else(|| StreamError::Format(format!("unknown slot role '{role}'")))
}

/// Rebuilds the concrete table of one export record.
fn table_from_record(rec: &ExportRecord) -> Result<Table, StreamError> {
    if rec.columns.len() != rec.types.len() {
        return Err(StreamError::Format(format!(
            "table '{}': {} columns but {} types",
            rec.table,
            rec.columns.len(),
            rec.types.len()
        )));
    }
    let dtypes: Vec<DataType> =
        rec.types.iter().map(|t| parse_dtype(t)).collect::<Result<_, _>>()?;
    let columns: Vec<Column> = rec
        .columns
        .iter()
        .zip(&dtypes)
        .map(|(n, &d)| Column::new(n.clone(), d))
        .collect();
    let mut table = Table::new(rec.table.clone(), Schema::new(columns));
    for row in &rec.rows {
        if row.len() != dtypes.len() {
            return Err(StreamError::Format(format!(
                "table '{}': row with {} cells, expected {}",
                rec.table,
                row.len(),
                dtypes.len()
            )));
        }
        let cells: Vec<Value> = row
            .iter()
            .zip(&dtypes)
            .map(|(c, &d)| parse_cell(c, d))
            .collect::<Result<_, _>>()?;
        table.push_row(cells);
    }
    Ok(table)
}

fn slots_from_record(rec: &ExportRecord) -> Result<Vec<GoldSlot>, StreamError> {
    rec.slots
        .iter()
        .map(|s| {
            Ok(GoldSlot {
                role: parse_role(&s.role)?,
                column: s.column,
                col_span: s.col_span,
                value: s.value.clone(),
                val_span: s.val_span,
            })
        })
        .collect()
}

/// Rebuilds a full [`Example`] (with its own table allocation) from an
/// export record — the lossless inverse of
/// [`export_record`](crate::export::export_record) for generated corpora.
pub fn example_from_record(rec: &ExportRecord) -> Result<Example, StreamError> {
    Ok(Example {
        id: rec.id,
        question: rec.question.clone(),
        table: Arc::new(table_from_record(rec)?),
        query: rec.sql.clone(),
        slots: slots_from_record(rec)?,
        sketch_compatible: rec.sketch_compatible,
    })
}

/// FNV-1a over the record's table content (name, schema, cells).
fn table_fingerprint(rec: &ExportRecord) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h ^= 0xff; // field separator
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    eat(rec.table.as_bytes());
    for (c, t) in rec.columns.iter().zip(&rec.types) {
        eat(c.as_bytes());
        eat(t.as_bytes());
    }
    for row in &rec.rows {
        for cell in row {
            eat(cell.as_bytes());
        }
    }
    h
}

/// Bounded FIFO pool of reconstructed tables, keyed by content
/// fingerprint — all examples of one table share a single `Arc<Table>`,
/// as they do in the in-memory generator, while the pool itself stays
/// bounded so a corpus of any size can stream through.
struct TablePool {
    cap: usize,
    map: BTreeMap<u64, Arc<Table>>,
    order: VecDeque<u64>,
}

impl TablePool {
    fn new(cap: usize) -> Self {
        TablePool { cap: cap.max(1), map: BTreeMap::new(), order: VecDeque::new() }
    }

    fn get_or_build(&mut self, rec: &ExportRecord) -> Result<Arc<Table>, StreamError> {
        let key = table_fingerprint(rec);
        if let Some(t) = self.map.get(&key) {
            // Cheap structural guard against fingerprint collisions.
            if t.name == rec.table && t.num_rows() == rec.rows.len() {
                return Ok(Arc::clone(t));
            }
        }
        let table = Arc::new(table_from_record(rec)?);
        if !self.map.contains_key(&key) {
            self.order.push_back(key);
            if self.order.len() > self.cap {
                if let Some(old) = self.order.pop_front() {
                    self.map.remove(&old);
                }
            }
        }
        self.map.insert(key, Arc::clone(&table));
        Ok(table)
    }
}

/// Streams a written corpus back from disk, shard by shard.
pub struct CorpusReader {
    dir: PathBuf,
    manifest: CorpusManifest,
    tables: TablePool,
    gauge: ResidencyGauge,
}

/// Tables kept live in the reader's dedup pool.
const TABLE_POOL_CAP: usize = 64;

impl CorpusReader {
    /// Opens a corpus directory by reading its manifest.
    pub fn open(dir: &Path) -> Result<Self, StreamError> {
        let text = std::fs::read_to_string(dir.join(MANIFEST_FILE))?;
        let manifest = CorpusManifest::from_json(&Json::parse(&text)?)?;
        Ok(CorpusReader {
            dir: dir.to_path_buf(),
            manifest,
            tables: TablePool::new(TABLE_POOL_CAP),
            gauge: ResidencyGauge::new(),
        })
    }

    /// The manifest the reader was opened with.
    pub fn manifest(&self) -> &CorpusManifest {
        &self.manifest
    }

    /// Number of shards in the corpus (all splits).
    pub fn num_shards(&self) -> usize {
        self.manifest.shards.len()
    }

    /// The reader's residency gauge.
    pub fn gauge(&self) -> ResidencyGauge {
        self.gauge.clone()
    }

    /// Loads one shard by global index.
    pub fn read_shard(&mut self, shard: usize) -> Result<ShardLease, StreamError> {
        let meta = self
            .manifest
            .shards
            .get(shard)
            .ok_or_else(|| StreamError::Format(format!("no shard {shard} in manifest")))?
            .clone();
        let text = std::fs::read_to_string(self.dir.join(&meta.file))?;
        let mut examples = Vec::with_capacity(meta.examples);
        for line in text.lines().filter(|l| !l.trim().is_empty()) {
            let rec = ExportRecord::from_json(&Json::parse(line)?)?;
            examples.push(Example {
                id: rec.id,
                table: self.tables.get_or_build(&rec)?,
                question: rec.question.clone(),
                query: rec.sql.clone(),
                slots: slots_from_record(&rec)?,
                sketch_compatible: rec.sketch_compatible,
            });
        }
        if examples.len() != meta.examples {
            return Err(StreamError::Format(format!(
                "shard file {} has {} records, manifest says {}",
                meta.file,
                examples.len(),
                meta.examples
            )));
        }
        Ok(ShardLease::new(examples, self.gauge.clone()))
    }

    /// A view of one split as an [`ExampleSource`] (shards re-indexed
    /// from zero, in corpus order).
    pub fn split_source(&mut self, split: Split) -> SplitSource<'_> {
        let shard_ids: Vec<usize> = self
            .manifest
            .shards
            .iter()
            .enumerate()
            .filter(|(_, m)| m.split == split.name())
            .map(|(i, _)| i)
            .collect();
        let examples = shard_ids.iter().map(|&i| self.manifest.shards[i].examples).sum();
        SplitSource { reader: self, shard_ids, examples }
    }
}

/// One split of an on-disk corpus, exposed as an [`ExampleSource`].
pub struct SplitSource<'a> {
    reader: &'a mut CorpusReader,
    shard_ids: Vec<usize>,
    examples: usize,
}

impl ExampleSource for SplitSource<'_> {
    fn num_shards(&self) -> usize {
        self.shard_ids.len()
    }

    fn num_examples(&self) -> usize {
        self.examples
    }

    fn load_shard(&mut self, shard: usize) -> Result<ShardLease, StreamError> {
        self.reader.read_shard(self.shard_ids[shard])
    }

    fn gauge(&self) -> ResidencyGauge {
        self.reader.gauge()
    }
}

/// An in-memory [`ExampleSource`]: pre-materialized shards served under
/// the same lease/gauge protocol as the disk reader. The reference
/// implementation streamed training is compared against.
pub struct InMemorySource {
    shards: Vec<Vec<Example>>,
    gauge: ResidencyGauge,
}

impl InMemorySource {
    /// Wraps pre-built shards.
    pub fn new(shards: Vec<Vec<Example>>) -> Self {
        InMemorySource { shards, gauge: ResidencyGauge::new() }
    }

    /// Generates one split of `plan` shard-by-shard.
    pub fn from_plan(plan: &CorpusPlan, split: Split) -> Self {
        let shards: Vec<Vec<Example>> =
            plan.shards_for(split).iter().map(|s| plan.gen_shard(s.index)).collect();
        InMemorySource::new(shards)
    }
}

impl ExampleSource for InMemorySource {
    fn num_shards(&self) -> usize {
        self.shards.len()
    }

    fn num_examples(&self) -> usize {
        self.shards.iter().map(Vec::len).sum()
    }

    fn load_shard(&mut self, shard: usize) -> Result<ShardLease, StreamError> {
        Ok(ShardLease::new(self.shards[shard].clone(), self.gauge.clone()))
    }

    fn gauge(&self) -> ResidencyGauge {
        self.gauge.clone()
    }
}

/// Reads one full split into memory (convenience for evaluation, where
/// the dev/test splits are small).
pub fn load_split(dir: &Path, split: Split) -> Result<Vec<Example>, StreamError> {
    let mut reader = CorpusReader::open(dir)?;
    let mut src = reader.split_source(split);
    let mut out = Vec::with_capacity(src.num_examples());
    for s in 0..src.num_shards() {
        out.extend_from_slice(&src.load_shard(s)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::export::export_record;
    use crate::shard::ShardedCorpusConfig;
    use nlidb_tensor::pool::{default_threads, set_threads};

    fn temp_dir(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("nlidb-stream-{name}-{}", std::process::id()))
    }

    fn assert_same_example(a: &Example, b: &Example) {
        assert_eq!(a.id, b.id);
        assert_eq!(a.question, b.question);
        assert_eq!(a.query, b.query);
        assert_eq!(a.slots, b.slots);
        assert_eq!(a.sketch_compatible, b.sketch_compatible);
        assert_eq!(a.table.name, b.table.name);
        assert_eq!(a.table.schema(), b.table.schema());
        for r in 0..a.table.num_rows() {
            for c in 0..a.table.num_cols() {
                assert_eq!(a.table.cell(r, c), b.table.cell(r, c), "cell ({r},{c})");
            }
        }
    }

    #[test]
    fn written_corpus_reads_back_losslessly() {
        let plan = CorpusPlan::compile(ShardedCorpusConfig::tiny(21));
        let dir = temp_dir("roundtrip");
        let manifest = write_corpus(&plan, &dir).unwrap();
        assert_eq!(manifest.shards.len(), plan.shards().len());
        assert_eq!(manifest.examples, plan.num_examples());
        let mut reader = CorpusReader::open(&dir).unwrap();
        assert_eq!(reader.manifest(), &manifest);
        for (i, spec) in plan.shards().iter().enumerate() {
            let want = plan.gen_shard(spec.index);
            let got = reader.read_shard(i).unwrap();
            assert_eq!(got.len(), want.len());
            for (g, w) in got.iter().zip(&want) {
                assert_same_example(g, w);
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn shard_files_are_byte_identical_across_thread_counts() {
        let plan = CorpusPlan::compile(ShardedCorpusConfig::tiny(22));
        let d1 = temp_dir("threads1");
        let dn = temp_dir("threadsn");
        set_threads(1);
        write_corpus(&plan, &d1).unwrap();
        set_threads(4);
        write_corpus(&plan, &dn).unwrap();
        set_threads(default_threads());
        let mut names: Vec<String> =
            plan.shards().iter().map(|s| shard_file_name(s.split, s.index)).collect();
        names.push(MANIFEST_FILE.to_string());
        for name in names {
            let a = std::fs::read(d1.join(&name)).unwrap();
            let b = std::fs::read(dn.join(&name)).unwrap();
            assert_eq!(a, b, "{name} differs across thread counts");
        }
        std::fs::remove_dir_all(&d1).ok();
        std::fs::remove_dir_all(&dn).ok();
    }

    #[test]
    fn residency_stays_bounded_by_one_shard() {
        let plan = CorpusPlan::compile(ShardedCorpusConfig::tiny(23));
        let dir = temp_dir("gauge");
        write_corpus(&plan, &dir).unwrap();
        let mut reader = CorpusReader::open(&dir).unwrap();
        let gauge = reader.gauge();
        let max_shard =
            reader.manifest().shards.iter().map(|s| s.examples).max().unwrap();
        let total: usize = reader.manifest().shards.iter().map(|s| s.examples).sum();
        for i in 0..reader.num_shards() {
            let lease = reader.read_shard(i).unwrap();
            assert_eq!(gauge.current(), lease.len());
            drop(lease);
            assert_eq!(gauge.current(), 0);
        }
        assert!(gauge.peak() <= max_shard, "peak {} > shard bound {max_shard}", gauge.peak());
        assert!(gauge.peak() < total, "streaming never held the whole corpus");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn examples_of_one_table_share_the_arc() {
        let plan = CorpusPlan::compile(ShardedCorpusConfig::tiny(24));
        let dir = temp_dir("dedup");
        write_corpus(&plan, &dir).unwrap();
        let mut reader = CorpusReader::open(&dir).unwrap();
        let shard = reader.read_shard(0).unwrap();
        let qpt = plan.config().base.questions_per_table;
        assert!(shard.len() > qpt);
        for pair in shard.chunks(qpt) {
            for e in &pair[1..] {
                assert!(
                    Arc::ptr_eq(&pair[0].table, &e.table),
                    "examples of one table should share the allocation"
                );
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn split_source_and_in_memory_source_agree() {
        let plan = CorpusPlan::compile(ShardedCorpusConfig::tiny(25));
        let dir = temp_dir("sources");
        write_corpus(&plan, &dir).unwrap();
        let mut reader = CorpusReader::open(&dir).unwrap();
        for split in Split::ALL {
            let mut mem = InMemorySource::from_plan(&plan, split);
            let mut disk = reader.split_source(split);
            assert_eq!(disk.num_shards(), mem.num_shards(), "{split:?}");
            assert_eq!(disk.num_examples(), mem.num_examples(), "{split:?}");
            for s in 0..disk.num_shards() {
                let a = disk.load_shard(s).unwrap();
                let b = mem.load_shard(s).unwrap();
                assert_eq!(a.len(), b.len());
                for (x, y) in a.iter().zip(b.iter()) {
                    assert_same_example(x, y);
                }
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_split_concatenates_split_shards() {
        let plan = CorpusPlan::compile(ShardedCorpusConfig::tiny(26));
        let dir = temp_dir("loadsplit");
        write_corpus(&plan, &dir).unwrap();
        let ds = plan.gen_all();
        let train = load_split(&dir, Split::Train).unwrap();
        assert_eq!(train.len(), ds.train.len());
        for (a, b) in train.iter().zip(&ds.train) {
            assert_same_example(a, b);
        }
        let dev = load_split(&dir, Split::Dev).unwrap();
        assert_eq!(dev.len(), ds.dev.len());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn example_from_record_is_lossless() {
        let plan = CorpusPlan::compile(ShardedCorpusConfig::tiny(27));
        for e in plan.gen_shard(0).iter().take(8) {
            let rebuilt = example_from_record(&export_record(e)).unwrap();
            assert_same_example(&rebuilt, e);
        }
    }

    #[test]
    fn malformed_inputs_are_format_errors() {
        assert!(matches!(parse_dtype("bool"), Err(StreamError::Format(_))));
        assert!(matches!(parse_cell("abc", DataType::Int), Err(StreamError::Format(_))));
        assert!(matches!(parse_role("group3"), Err(StreamError::Format(_))));
        assert_eq!(parse_cell("NULL", DataType::Float).unwrap(), Value::Null);
        assert!(matches!(parse_role("cond2"), Ok(SlotRole::Cond(2))));
    }
}
