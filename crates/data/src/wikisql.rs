//! WikiSQL-shaped synthetic corpus generator.
//!
//! Mirrors the structural properties of WikiSQL that the paper's claims
//! rest on: many unrelated domains, tables **not shared** across
//! train/dev/test, single-table `SELECT agg(col) WHERE ...` queries, and
//! questions exhibiting all five §III challenges (the counterfactual-value
//! channel lives here; the surface-noise channels live in
//! [`crate::question`]).

use std::sync::Arc;

use nlidb_sqlir::{Agg, CmpOp, Cond, Literal, Query};
use nlidb_storage::{Column, Schema, Table, Value};
use nlidb_tensor::Rng;

use crate::domains::{ColumnArchetype, Domain, DOMAINS};
use crate::example::{Dataset, Example};
use crate::question::{realize_question, NoiseConfig};

/// Generator configuration.
#[derive(Debug, Clone)]
pub struct WikiSqlConfig {
    /// Master seed; the whole corpus is a pure function of it.
    pub seed: u64,
    /// Tables in the train split.
    pub train_tables: usize,
    /// Tables in the dev split.
    pub dev_tables: usize,
    /// Tables in the test split.
    pub test_tables: usize,
    /// Questions generated per table.
    pub questions_per_table: usize,
    /// Row-count range per table.
    pub rows: (usize, usize),
    /// Probability that a condition value is counterfactual (not in the
    /// table) — §III challenge 4.
    pub counterfactual_rate: f32,
    /// Surface-noise channel rates.
    pub noise: NoiseConfig,
}

impl Default for WikiSqlConfig {
    fn default() -> Self {
        WikiSqlConfig {
            seed: 42,
            train_tables: 60,
            dev_tables: 15,
            test_tables: 15,
            questions_per_table: 20,
            rows: (4, 9),
            counterfactual_rate: 0.15,
            noise: NoiseConfig::default(),
        }
    }
}

impl WikiSqlConfig {
    /// A tiny configuration for fast unit tests.
    pub fn tiny(seed: u64) -> Self {
        WikiSqlConfig {
            seed,
            train_tables: 6,
            dev_tables: 2,
            test_tables: 2,
            questions_per_table: 6,
            ..WikiSqlConfig::default()
        }
    }
}

/// A generated table together with its column archetypes (needed by the
/// question realizer for surface forms).
#[derive(Debug, Clone)]
pub struct GenTable {
    /// The concrete table.
    pub table: Arc<Table>,
    /// Archetype per schema column.
    pub archetypes: Vec<ColumnArchetype>,
}

/// Samples one concrete table from a random built-in domain.
pub fn gen_table(name: &str, rng: &mut Rng, rows: (usize, usize)) -> GenTable {
    let domain = &DOMAINS[rng.gen_range(0..DOMAINS.len())];
    gen_table_from_domain(domain, name, rng, rows)
}

/// Samples one concrete table from a specific domain archetype.
pub fn gen_table_from_domain(
    domain: &Domain,
    name: &str,
    rng: &mut Rng,
    rows: (usize, usize),
) -> GenTable {
    // Entity column plus a random subset of the others, preserving order.
    let mut chosen: Vec<ColumnArchetype> = vec![domain.columns[0]];
    let extra: Vec<ColumnArchetype> = domain.columns[1..]
        .iter()
        .filter(|_| rng.gen::<f32>() < 0.8)
        .copied()
        .collect();
    chosen.extend(extra);
    if chosen.len() < 3 {
        chosen.extend(domain.columns[1..].iter().take(3 - chosen.len()).copied());
    }
    // Schema names: sample a variant per archetype, de-duplicated.
    let mut used = std::collections::HashSet::new();
    let mut columns = Vec::with_capacity(chosen.len());
    for arch in &chosen {
        let mut name_choice =
            arch.names[rng.gen_range(0..arch.names.len())].to_string();
        if !used.insert(name_choice.to_lowercase()) {
            name_choice = arch
                .names
                .iter()
                .map(|n| n.to_string())
                .find(|n| !used.contains(&n.to_lowercase()))
                .unwrap_or(format!("{name_choice} 2"));
            used.insert(name_choice.to_lowercase());
        }
        columns.push(Column::new(name_choice, arch.kind.dtype()));
    }
    let schema = Schema::new(columns);
    let mut table = Table::new(name, schema);
    let n_rows = rng.gen_range(rows.0..=rows.1);
    for _ in 0..n_rows {
        let row: Vec<Value> = chosen.iter().map(|a| a.kind.generate(rng)).collect();
        table.push_row(row);
    }
    GenTable { table: Arc::new(table), archetypes: chosen }
}

fn pick_agg(rng: &mut Rng) -> Agg {
    let r: f32 = rng.gen();
    if r < 0.68 {
        Agg::None
    } else if r < 0.80 {
        Agg::Count
    } else if r < 0.87 {
        Agg::Max
    } else if r < 0.94 {
        Agg::Min
    } else if r < 0.97 {
        Agg::Sum
    } else {
        Agg::Avg
    }
}

fn numeric_cols(gt: &GenTable) -> Vec<usize> {
    (0..gt.table.num_cols())
        .filter(|&c| gt.table.schema().column(c).dtype.is_numeric())
        .collect()
}

/// Samples one query against a generated table.
pub fn gen_query(gt: &GenTable, counterfactual_rate: f32, rng: &mut Rng) -> Query {
    let ncols = gt.table.num_cols();
    let mut agg = pick_agg(rng);
    let numeric = numeric_cols(gt);
    let select_col = match agg {
        Agg::Max | Agg::Min | Agg::Sum | Agg::Avg => {
            if numeric.is_empty() {
                agg = Agg::None;
                rng.gen_range(0..ncols)
            } else {
                numeric[rng.gen_range(0..numeric.len())]
            }
        }
        _ => rng.gen_range(0..ncols),
    };
    let n_conds = {
        let r: f32 = rng.gen();
        if r < 0.10 {
            0
        } else if r < 0.60 {
            1
        } else if r < 0.92 {
            2
        } else {
            3
        }
    };
    // With no conditions a plain projection is trivial; prefer aggregates.
    if n_conds == 0 && agg == Agg::None {
        agg = Agg::Count;
    }
    let mut cond_cols: Vec<usize> = (0..ncols).filter(|&c| c != select_col).collect();
    // Shuffle by repeated swaps (avoids pulling in the shuffle trait).
    for i in (1..cond_cols.len()).rev() {
        let j = rng.gen_range(0..=i);
        cond_cols.swap(i, j);
    }
    cond_cols.truncate(n_conds.min(cond_cols.len()));
    let mut conds = Vec::with_capacity(cond_cols.len());
    for col in cond_cols {
        let dtype = gt.table.schema().column(col).dtype;
        let op = if dtype.is_numeric() {
            match rng.gen_range(0..10) {
                0..=4 => CmpOp::Eq,
                5 => CmpOp::Gt,
                6 => CmpOp::Lt,
                7 => CmpOp::Ge,
                8 => CmpOp::Le,
                _ => CmpOp::Ne,
            }
        } else {
            CmpOp::Eq
        };
        let existing = gt.table.column_values(col);
        // Never sample a NULL as a condition literal: NULL matches no
        // operator, so the gold condition would be unsatisfiable and its
        // value mention would render as an empty string. All-NULL columns
        // fall back to the counterfactual channel (which synthesizes a
        // plausible out-of-table value of the column's kind).
        let non_null: Vec<&Value> =
            existing.iter().filter(|v| !matches!(v, Value::Null)).collect();
        let value = if non_null.is_empty() || rng.gen::<f32>() < counterfactual_rate {
            gt.archetypes[col].kind.generate_counterfactual(rng, existing)
        } else {
            non_null[rng.gen_range(0..non_null.len())].clone()
        };
        let lit = match value {
            Value::Int(i) => Literal::Number(i as f64),
            Value::Float(f) => Literal::Number(f),
            Value::Text(t) => Literal::Text(t),
            Value::Null => unreachable!("condition values are sampled from non-NULL cells"),
        };
        conds.push(Cond { col, op, value: lit });
    }
    Query { agg, select_col, conds }
}

fn gen_split(
    prefix: &str,
    n_tables: usize,
    cfg: &WikiSqlConfig,
    rng: &mut Rng,
    next_id: &mut usize,
) -> Vec<Example> {
    let mut examples = Vec::with_capacity(n_tables * cfg.questions_per_table);
    for t in 0..n_tables {
        let gt = gen_table(&format!("{prefix}_table_{t}"), rng, cfg.rows);
        let names = gt.table.column_names();
        for _ in 0..cfg.questions_per_table {
            let query = gen_query(&gt, cfg.counterfactual_rate, rng);
            let (question, slots) =
                realize_question(&gt.archetypes, &names, &query, &cfg.noise, rng);
            examples.push(Example {
                id: *next_id,
                question,
                table: Arc::clone(&gt.table),
                query,
                slots,
                sketch_compatible: true,
            });
            *next_id += 1;
        }
    }
    examples
}

/// Generates the full dataset.
pub fn generate(cfg: &WikiSqlConfig) -> Dataset {
    let mut rng = Rng::seed_from_u64(cfg.seed);
    let mut next_id = 0;
    let train = gen_split("train", cfg.train_tables, cfg, &mut rng, &mut next_id);
    let dev = gen_split("dev", cfg.dev_tables, cfg, &mut rng, &mut next_id);
    let test = gen_split("test", cfg.test_tables, cfg, &mut rng, &mut next_id);
    Dataset { train, dev, test }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nlidb_storage::execute;

    fn tiny() -> Dataset {
        generate(&WikiSqlConfig::tiny(7))
    }

    #[test]
    fn splits_have_expected_sizes_and_disjoint_tables() {
        let ds = tiny();
        assert_eq!(ds.train.len(), 6 * 6);
        assert_eq!(ds.dev.len(), 2 * 6);
        assert_eq!(ds.test.len(), 2 * 6);
        assert!(ds.splits_share_no_tables());
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(&WikiSqlConfig::tiny(9));
        let b = generate(&WikiSqlConfig::tiny(9));
        for (x, y) in a.train.iter().zip(&b.train) {
            assert_eq!(x.question, y.question);
            assert_eq!(x.query, y.query);
        }
        let c = generate(&WikiSqlConfig::tiny(10));
        assert!(
            a.train.iter().zip(&c.train).any(|(x, y)| x.question != y.question),
            "different seeds should differ"
        );
    }

    #[test]
    fn queries_reference_valid_columns() {
        let ds = tiny();
        for e in ds.train.iter().chain(&ds.dev).chain(&ds.test) {
            assert!(e.query.select_col < e.table.num_cols(), "{}", e.sql_text());
            for c in &e.query.conds {
                assert!(c.col < e.table.num_cols());
            }
        }
    }

    #[test]
    fn queries_execute_without_schema_errors() {
        let ds = tiny();
        for e in ds.train.iter().take(30) {
            let res = execute(&e.table, &e.query);
            assert!(res.is_ok(), "{} failed: {res:?}", e.sql_text());
        }
    }

    #[test]
    fn gold_value_spans_match_question_tokens() {
        let ds = tiny();
        for e in ds.train.iter() {
            for s in &e.slots {
                if let (Some(v), Some((a, b))) = (&s.value, s.val_span) {
                    assert_eq!(
                        &e.question[a..b],
                        nlidb_text::tokenize(v).as_slice(),
                        "span mismatch in {:?}",
                        e.question_text()
                    );
                }
            }
        }
    }

    #[test]
    fn numeric_aggregates_only_on_numeric_columns() {
        let ds = tiny();
        for e in ds.train.iter().chain(&ds.dev).chain(&ds.test) {
            if matches!(e.query.agg, Agg::Max | Agg::Min | Agg::Sum | Agg::Avg) {
                assert!(
                    e.table.schema().column(e.query.select_col).dtype.is_numeric(),
                    "numeric agg over text column: {}",
                    e.sql_text()
                );
            }
        }
    }

    #[test]
    fn counterfactual_rate_produces_out_of_table_values() {
        let mut cfg = WikiSqlConfig::tiny(11);
        cfg.counterfactual_rate = 1.0;
        let ds = generate(&cfg);
        let mut counterfactual = 0;
        let mut total = 0;
        for e in &ds.train {
            for c in &e.query.conds {
                total += 1;
                let canon = c.value.canonical_text();
                let in_table = e
                    .table
                    .column_values(c.col)
                    .iter()
                    .any(|v| v.canonical_text() == canon);
                if !in_table {
                    counterfactual += 1;
                }
            }
        }
        assert!(total > 0);
        assert_eq!(counterfactual, total, "all values should be counterfactual");
    }

    #[test]
    fn zero_counterfactual_rate_keeps_values_in_table() {
        let mut cfg = WikiSqlConfig::tiny(12);
        cfg.counterfactual_rate = 0.0;
        let ds = generate(&cfg);
        for e in &ds.train {
            for c in &e.query.conds {
                let canon = c.value.canonical_text();
                assert!(
                    e.table
                        .column_values(c.col)
                        .iter()
                        .any(|v| v.canonical_text() == canon),
                    "non-counterfactual value missing from table: {} in {}",
                    canon,
                    e.sql_text()
                );
            }
        }
    }

    /// A NULL cell must never surface as a condition literal: NULL
    /// matches no operator, so the gold condition would be unsatisfiable
    /// and its question mention would be an empty string. Columns that
    /// are entirely NULL fall back to the counterfactual channel.
    #[test]
    fn null_cells_never_become_condition_literals() {
        let d = &DOMAINS[0]; // films
        let archetypes: Vec<ColumnArchetype> = d.columns[..3].to_vec();
        let columns: Vec<Column> = archetypes
            .iter()
            .map(|a| Column::new(a.names[0], a.kind.dtype()))
            .collect();
        let mut table = Table::new("nulls", Schema::new(columns));
        let mut seed_rng = Rng::seed_from_u64(100);
        for r in 0..6 {
            let row: Vec<Value> = archetypes
                .iter()
                .enumerate()
                .map(|(c, a)| {
                    if c == 1 || (c == 2 && r % 2 == 0) {
                        Value::Null // column 1 all-NULL, column 2 half-NULL
                    } else {
                        a.kind.generate(&mut seed_rng)
                    }
                })
                .collect();
            table.push_row(row);
        }
        let gt = GenTable { table: Arc::new(table), archetypes };
        let mut conds_seen = 0;
        let mut in_table = 0;
        for seed in 0..300u64 {
            let mut rng = Rng::seed_from_u64(seed);
            let q = gen_query(&gt, 0.15, &mut rng);
            for cond in &q.conds {
                conds_seen += 1;
                let canon = cond.value.canonical_text();
                assert!(
                    !canon.is_empty(),
                    "NULL-derived condition literal in {}",
                    q.to_sql(&gt.table.column_names())
                );
                if gt
                    .table
                    .column_values(cond.col)
                    .iter()
                    .any(|v| !matches!(v, Value::Null) && v.canonical_text() == canon)
                {
                    in_table += 1;
                }
            }
        }
        assert!(conds_seen > 100, "too few conditions sampled: {conds_seen}");
        assert!(in_table > 0, "non-NULL cells should still be sampled");
    }

    #[test]
    fn schema_names_are_unique_within_table() {
        let ds = tiny();
        for e in &ds.train {
            let names = e.table.column_names();
            let mut lower: Vec<String> = names.iter().map(|n| n.to_lowercase()).collect();
            lower.sort();
            let before = lower.len();
            lower.dedup();
            assert_eq!(lower.len(), before, "duplicate columns in {names:?}");
        }
    }

    #[test]
    fn no_cond_queries_carry_aggregates() {
        let ds = tiny();
        for e in &ds.train {
            if e.query.conds.is_empty() {
                assert_ne!(e.query.agg, Agg::None, "trivial full-column projection");
            }
        }
    }
}
