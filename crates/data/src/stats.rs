//! Corpus statistics: how often each §III question-understanding
//! challenge actually occurs in a generated dataset.
//!
//! WikiSQL's release documents its query/aggregate/condition distributions;
//! this module provides the same transparency for the synthetic corpora,
//! and the numbers are what make the difficulty of each evaluation split
//! interpretable (e.g. Table IV(b)'s categories map to these channels).

use nlidb_sqlir::Agg;

use crate::example::Example;

/// Aggregate statistics over a set of examples.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CorpusStats {
    /// Number of examples.
    pub n: usize,
    /// Distinct tables.
    pub tables: usize,
    /// Mean question length in tokens.
    pub mean_question_len: f32,
    /// Distribution over aggregates, `Agg::ALL` order.
    pub agg_counts: [usize; 6],
    /// Distribution over condition counts (0..=3).
    pub cond_counts: [usize; 4],
    /// Questions containing at least one implicit column mention
    /// (challenge 3).
    pub with_implicit: usize,
    /// Questions containing at least one counterfactual condition value
    /// (challenge 4: value absent from the table).
    pub with_counterfactual: usize,
    /// Questions with ≥2 condition columns sharing a value kind
    /// (challenge 5 pressure: resolution ambiguity).
    pub with_ambiguity: usize,
    /// Vocabulary size (distinct question tokens).
    pub vocabulary: usize,
}

/// Computes statistics over examples.
pub fn corpus_stats(examples: &[Example]) -> CorpusStats {
    use std::collections::HashSet;
    let mut s = CorpusStats { n: examples.len(), ..CorpusStats::default() };
    let mut tables: HashSet<String> = HashSet::new();
    let mut vocab: HashSet<&str> = HashSet::new();
    let mut len_total = 0usize;
    for e in examples {
        tables.insert(e.table.name.clone());
        len_total += e.question.len();
        for t in &e.question {
            vocab.insert(t);
        }
        let agg_idx = Agg::ALL.iter().position(|a| *a == e.query.agg).expect("agg");
        s.agg_counts[agg_idx] += 1;
        s.cond_counts[e.query.conds.len().min(3)] += 1;
        if e.slots.iter().any(|sl| sl.value.is_some() && sl.col_span.is_none()) {
            s.with_implicit += 1;
        }
        let counterfactual = e.query.conds.iter().any(|c| {
            let canon = c.value.canonical_text();
            !e.table
                .column_values(c.col)
                .iter()
                .any(|v| v.canonical_text() == canon)
        });
        if counterfactual {
            s.with_counterfactual += 1;
        }
        // Ambiguity pressure: two condition columns with same dtype whose
        // values are both non-numeric text (person-name-like collisions).
        let text_cond_cols = e
            .query
            .conds
            .iter()
            .filter(|c| matches!(c.value, nlidb_sqlir::Literal::Text(_)))
            .count();
        if text_cond_cols >= 2 {
            s.with_ambiguity += 1;
        }
    }
    s.tables = tables.len();
    s.vocabulary = vocab.len();
    s.mean_question_len =
        if examples.is_empty() { 0.0 } else { len_total as f32 / examples.len() as f32 };
    s
}

impl CorpusStats {
    /// Renders the statistics as an aligned report block.
    pub fn report(&self, label: &str) -> String {
        let pct = |k: usize| {
            if self.n == 0 {
                0.0
            } else {
                100.0 * k as f32 / self.n as f32
            }
        };
        let mut out = String::new();
        out.push_str(&format!("[{label}]\n"));
        out.push_str(&format!(
            "  examples {:>6}   tables {:>4}   vocab {:>5}   mean len {:>5.1}\n",
            self.n, self.tables, self.vocabulary, self.mean_question_len
        ));
        out.push_str("  agg: ");
        for (agg, k) in Agg::ALL.iter().zip(self.agg_counts) {
            let name = if *agg == Agg::None { "NONE" } else { agg.keyword() };
            out.push_str(&format!("{name} {:.1}%  ", pct(k)));
        }
        out.push('\n');
        out.push_str("  conds: ");
        for (i, k) in self.cond_counts.iter().enumerate() {
            out.push_str(&format!("{i}:{:.1}%  ", pct(*k)));
        }
        out.push('\n');
        out.push_str(&format!(
            "  challenges: implicit {:.1}%   counterfactual {:.1}%   multi-text-cond {:.1}%\n",
            pct(self.with_implicit),
            pct(self.with_counterfactual),
            pct(self.with_ambiguity)
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wikisql::{generate, WikiSqlConfig};

    #[test]
    fn stats_cover_the_whole_split() {
        let ds = generate(&WikiSqlConfig::tiny(7));
        let s = corpus_stats(&ds.train);
        assert_eq!(s.n, ds.train.len());
        assert_eq!(s.agg_counts.iter().sum::<usize>(), s.n);
        assert_eq!(s.cond_counts.iter().sum::<usize>(), s.n);
        assert!(s.tables >= 6);
        assert!(s.mean_question_len > 3.0);
        assert!(s.vocabulary > 30);
    }

    #[test]
    fn challenge_channels_appear_at_default_rates() {
        let mut cfg = WikiSqlConfig::tiny(8);
        cfg.train_tables = 20;
        cfg.questions_per_table = 10;
        let ds = generate(&cfg);
        let s = corpus_stats(&ds.train);
        // With default noise, implicit and counterfactual channels fire on
        // a visible fraction of questions.
        assert!(s.with_implicit > s.n / 20, "implicit too rare: {s:?}");
        assert!(s.with_counterfactual > s.n / 25, "counterfactual too rare: {s:?}");
    }

    #[test]
    fn clean_noise_produces_no_implicit_mentions() {
        let mut cfg = WikiSqlConfig::tiny(9);
        cfg.noise = crate::question::NoiseConfig::clean();
        let ds = generate(&cfg);
        let s = corpus_stats(&ds.train);
        assert_eq!(s.with_implicit, 0);
    }

    #[test]
    fn report_is_renderable() {
        let ds = generate(&WikiSqlConfig::tiny(10));
        let s = corpus_stats(&ds.dev);
        let r = s.report("dev");
        assert!(r.contains("[dev]"));
        assert!(r.contains("challenges:"));
    }

    #[test]
    fn empty_input() {
        let s = corpus_stats(&[]);
        assert_eq!(s.n, 0);
        assert_eq!(s.mean_question_len, 0.0);
    }
}
