//! Question realization: renders a (table, SQL) pair into a natural
//! language question while recording gold mention spans.
//!
//! Each §III challenge is an explicit, rate-controlled noise channel:
//!
//! | Challenge | Channel |
//! |---|---|
//! | 1. non-exact matching | synonym surface forms + morphological noise |
//! | 2. paraphrases | long paraphrase phrases from the column archetype |
//! | 3. implicit mentions | the column mention is dropped entirely |
//! | 4. counterfactual values | handled by the corpus generator (values not in the table) |
//! | 5. resolution | several same-kind columns (e.g. Director/Actor) in one question |

use nlidb_sqlir::{Agg, CmpOp, Literal, Query};
use nlidb_tensor::Rng;

use crate::domains::ColumnArchetype;
use crate::example::{GoldSlot, SlotRole};
use nlidb_text::tokenize;

/// Rates for the question-noise channels.
#[derive(Debug, Clone, Copy)]
pub struct NoiseConfig {
    /// Probability of using a synonym instead of the schema column name.
    pub synonym_rate: f32,
    /// Probability of using a long paraphrase (when the archetype has one).
    pub paraphrase_rate: f32,
    /// Probability of dropping an `implicit_ok` column mention.
    pub implicit_rate: f32,
    /// Probability of inflecting a mention word (plural/suffix noise).
    pub morph_rate: f32,
    /// Probability of realizing the first condition *before* the select
    /// clause ("for mayo , what is the population ?") — exercises
    /// non-canonical clause order (ParaphraseBench's SYNTACTIC category).
    pub inverted_rate: f32,
}

impl Default for NoiseConfig {
    fn default() -> Self {
        NoiseConfig {
            synonym_rate: 0.45,
            paraphrase_rate: 0.25,
            implicit_rate: 0.3,
            morph_rate: 0.12,
            inverted_rate: 0.15,
        }
    }
}

impl NoiseConfig {
    /// All channels off: questions mention columns by their schema names.
    pub fn clean() -> Self {
        NoiseConfig {
            synonym_rate: 0.0,
            paraphrase_rate: 0.0,
            implicit_rate: 0.0,
            morph_rate: 0.0,
            inverted_rate: 0.0,
        }
    }
}

/// A compiled question-template plan: the tokenization of every static
/// surface phrase the realizer can emit — connector words, operator
/// phrases, aggregate openers, and the domain archetypes' schema-name
/// variants, mentions, and paraphrases.
///
/// Compiling once and sharing the plan read-only across shard workers
/// removes the per-question re-tokenization of the same fixed phrases —
/// the dbgen-style "compile templates once" step of the sharded corpus
/// pipeline. A plan lookup miss (dynamic text: values, inflected words)
/// falls back to [`nlidb_text::tokenize`], so realization through a plan
/// is byte-identical to realization without one.
#[derive(Debug, Clone, Default)]
pub struct TemplatePlan {
    tokens: std::collections::BTreeMap<String, Vec<String>>,
}

/// Static connector/operator/opener phrases used by the realizer.
const STATIC_PHRASES: &[&str] = &[
    "in", "by", "of", "from", "is", "being", "over", "above", "more than",
    "greater than", "under", "below", "less than", "fewer than", "at least",
    "no less than", "at most", "no more than", "not", "other than", "for",
    "with", "given", "in the case of", ",", "which", "what", "what is the",
    "tell me the", "how many", "what is the number of", "what is the highest",
    "what is the maximum", "which is the largest", "what is the lowest",
    "what is the minimum", "which is the smallest", "what is the total",
    "what is the combined", "what is the average", "what is the mean", "and",
    "and with", "and whose", "where", "whose", "?",
];

impl TemplatePlan {
    /// Compiles the plan over the static phrases and the built-in domain
    /// archetype library.
    pub fn compile() -> Self {
        let mut tokens = std::collections::BTreeMap::new();
        let mut add = |phrase: &str| {
            if !tokens.contains_key(phrase) {
                tokens.insert(phrase.to_string(), tokenize(phrase));
            }
        };
        for phrase in STATIC_PHRASES {
            add(phrase);
        }
        for d in crate::domains::DOMAINS {
            for col in d.columns {
                for n in col.names {
                    add(&n.to_lowercase());
                }
                for m in col.mentions {
                    add(m);
                }
                for p in col.paraphrases {
                    add(p);
                }
            }
        }
        TemplatePlan { tokens }
    }

    /// Number of compiled phrases.
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// Whether the plan is empty (only true for `Default`).
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }

    fn get(&self, phrase: &str) -> Option<&[String]> {
        self.tokens.get(phrase).map(Vec::as_slice)
    }
}

struct QBuilder<'p> {
    toks: Vec<String>,
    plan: Option<&'p TemplatePlan>,
}

impl QBuilder<'_> {
    /// Appends a phrase, returning its token span `[a, b)`.
    fn push(&mut self, phrase: &str) -> (usize, usize) {
        let a = self.toks.len();
        match self.plan.and_then(|p| p.get(phrase)) {
            Some(toks) => self.toks.extend_from_slice(toks),
            None => self.toks.extend(tokenize(phrase)),
        }
        (a, self.toks.len())
    }
}

/// Applies light morphological noise to a single word.
fn inflect(word: &str, rng: &mut Rng) -> String {
    if word.contains(' ') || word.len() < 3 {
        return word.to_string();
    }
    match rng.gen_range(0..3) {
        0 if !word.ends_with('s') => format!("{word}s"),
        1 if word.len() > 4 => word[..word.len() - 1].to_string(),
        _ => {
            let base = word.strip_suffix('e').unwrap_or(word);
            format!("{base}ing")
        }
    }
}

/// How a column ends up mentioned in the question.
#[derive(Debug, Clone, PartialEq)]
enum Surface {
    /// Some phrase is realized (schema name, synonym, or paraphrase).
    Phrase(String),
    /// Nothing is realized for the column.
    Implicit,
}

fn pick_surface(
    arch: &ColumnArchetype,
    schema_name: &str,
    allow_implicit: bool,
    noise: &NoiseConfig,
    rng: &mut Rng,
) -> Surface {
    if allow_implicit && arch.implicit_ok && rng.gen::<f32>() < noise.implicit_rate {
        return Surface::Implicit;
    }
    if !arch.paraphrases.is_empty() && rng.gen::<f32>() < noise.paraphrase_rate {
        let p = arch.paraphrases[rng.gen_range(0..arch.paraphrases.len())];
        return Surface::Phrase(p.to_string());
    }
    if rng.gen::<f32>() < noise.synonym_rate {
        let m = arch.mentions[rng.gen_range(0..arch.mentions.len())];
        let word = if rng.gen::<f32>() < noise.morph_rate { inflect(m, rng) } else { m.to_string() };
        return Surface::Phrase(word);
    }
    let name = schema_name.to_lowercase();
    let word = if rng.gen::<f32>() < noise.morph_rate {
        // Inflect the last word of a multi-word name.
        let mut parts: Vec<&str> = name.split(' ').collect();
        let last = parts.pop().unwrap_or("");
        let inflected = inflect(last, rng);
        if parts.is_empty() {
            inflected
        } else {
            format!("{} {}", parts.join(" "), inflected)
        }
    } else {
        name
    };
    Surface::Phrase(word)
}

fn literal_text(lit: &Literal) -> String {
    match lit {
        Literal::Text(t) => t.to_lowercase(),
        Literal::Number(_) => lit.canonical_text(),
    }
}

fn pick<'a>(rng: &mut Rng, options: &[&'a str]) -> &'a str {
    options[rng.gen_range(0..options.len())]
}

/// Realizes one condition's clause body (column surface + operator words +
/// value), returning the column and value spans.
fn push_cond(
    b: &mut QBuilder,
    archetypes: &[ColumnArchetype],
    column_names: &[String],
    cond: &nlidb_sqlir::Cond,
    noise: &NoiseConfig,
    rng: &mut Rng,
) -> (Option<(usize, usize)>, (usize, usize), String) {
    let arch = &archetypes[cond.col];
    let allow_implicit = cond.op == CmpOp::Eq;
    let surface = pick_surface(arch, &column_names[cond.col], allow_implicit, noise, rng);
    let val_text = literal_text(&cond.value);
    let (col_span, val_span) = match (&surface, cond.op) {
        (Surface::Implicit, _) => {
            let prep = pick(rng, &["", "in", "by", "of", "from"]);
            if !prep.is_empty() {
                b.push(prep);
            }
            let v = b.push(&val_text);
            (None, v)
        }
        (Surface::Phrase(p), CmpOp::Eq) => {
            let c = b.push(p);
            let eq = pick(rng, &["", "is", "of", "being"]);
            if !eq.is_empty() {
                b.push(eq);
            }
            let v = b.push(&val_text);
            (Some(c), v)
        }
        (Surface::Phrase(p), op) => {
            let c = b.push(p);
            let op_phrase = match op {
                CmpOp::Gt => pick(rng, &["over", "above", "more than", "greater than"]),
                CmpOp::Lt => pick(rng, &["under", "below", "less than", "fewer than"]),
                CmpOp::Ge => pick(rng, &["at least", "no less than"]),
                CmpOp::Le => pick(rng, &["at most", "no more than"]),
                CmpOp::Ne => pick(rng, &["not", "other than"]),
                CmpOp::Eq => unreachable!("handled above"),
            };
            b.push(op_phrase);
            let v = b.push(&val_text);
            (Some(c), v)
        }
    };
    (col_span, val_span, val_text)
}

/// Renders a question for `query` against a table whose columns follow
/// `archetypes` and are named `column_names`. Returns the question tokens
/// and the gold mention slots.
pub fn realize_question(
    archetypes: &[ColumnArchetype],
    column_names: &[String],
    query: &Query,
    noise: &NoiseConfig,
    rng: &mut Rng,
) -> (Vec<String>, Vec<GoldSlot>) {
    realize_impl(None, archetypes, column_names, query, noise, rng)
}

/// [`realize_question`] through a compiled [`TemplatePlan`]: identical
/// output, but static phrases reuse the plan's token cache instead of
/// re-tokenizing — the hot path for sharded corpus generation.
pub fn realize_question_with(
    plan: &TemplatePlan,
    archetypes: &[ColumnArchetype],
    column_names: &[String],
    query: &Query,
    noise: &NoiseConfig,
    rng: &mut Rng,
) -> (Vec<String>, Vec<GoldSlot>) {
    realize_impl(Some(plan), archetypes, column_names, query, noise, rng)
}

fn realize_impl(
    plan: Option<&TemplatePlan>,
    archetypes: &[ColumnArchetype],
    column_names: &[String],
    query: &Query,
    noise: &NoiseConfig,
    rng: &mut Rng,
) -> (Vec<String>, Vec<GoldSlot>) {
    let mut b = QBuilder { toks: Vec::new(), plan };
    let mut slots = Vec::new();

    // --- Optionally inverted clause order (first condition leads) ---
    let inverted = !query.conds.is_empty() && rng.gen::<f32>() < noise.inverted_rate;
    if inverted {
        b.push(pick(rng, &["for", "with", "given", "in the case of"]));
        let (col_span, val_span, val_text) =
            push_cond(&mut b, archetypes, column_names, &query.conds[0], noise, rng);
        slots.push(GoldSlot {
            role: SlotRole::Cond(0),
            column: query.conds[0].col,
            col_span,
            value: Some(val_text),
            val_span: Some(val_span),
        });
        b.push(",");
    }

    // --- Select clause ---
    let sel_arch = &archetypes[query.select_col];
    let sel_surface =
        pick_surface(sel_arch, &column_names[query.select_col], false, noise, rng);
    let sel_phrase = match &sel_surface {
        Surface::Phrase(p) => p.clone(),
        Surface::Implicit => unreachable!("select surface is never implicit"),
    };
    let paraphrase_select = sel_arch.paraphrases.contains(&sel_phrase.as_str());
    let sel_span = match query.agg {
        _ if paraphrase_select => {
            // The paraphrase IS the question opener ("how many people live in ...").
            b.push(&sel_phrase)
        }
        Agg::None => {
            b.push(pick(rng, &["which", "what", "what is the", "tell me the"]));
            b.push(&sel_phrase)
        }
        Agg::Count => {
            b.push(pick(rng, &["how many", "what is the number of"]));
            b.push(&sel_phrase)
        }
        Agg::Max => {
            b.push(pick(rng, &["what is the highest", "what is the maximum", "which is the largest"]));
            b.push(&sel_phrase)
        }
        Agg::Min => {
            b.push(pick(rng, &["what is the lowest", "what is the minimum", "which is the smallest"]));
            b.push(&sel_phrase)
        }
        Agg::Sum => {
            b.push(pick(rng, &["what is the total", "what is the combined"]));
            b.push(&sel_phrase)
        }
        Agg::Avg => {
            b.push(pick(rng, &["what is the average", "what is the mean"]));
            b.push(&sel_phrase)
        }
    };
    slots.push(GoldSlot {
        role: SlotRole::Select,
        column: query.select_col,
        col_span: Some(sel_span),
        value: None,
        val_span: None,
    });

    // --- Conditions (skipping the fronted one if inverted) ---
    let mut any_emitted = inverted;
    let start = usize::from(inverted);
    for (ci, cond) in query.conds.iter().enumerate().skip(start) {
        if any_emitted {
            b.push(pick(rng, &["and", "and with", "and whose"]));
        } else if !paraphrase_select {
            b.push(pick(rng, &["with", "where", "for", "whose"]));
        }
        any_emitted = true;
        let (col_span, val_span, val_text) =
            push_cond(&mut b, archetypes, column_names, cond, noise, rng);
        slots.push(GoldSlot {
            role: SlotRole::Cond(ci),
            column: cond.col,
            col_span,
            value: Some(val_text),
            val_span: Some(val_span),
        });
    }

    b.push("?");
    (b.toks, slots)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domains::DOMAINS;

    fn film_setup() -> (&'static [ColumnArchetype], Vec<String>) {
        let d = &DOMAINS[0]; // films
        let names: Vec<String> = d.columns.iter().map(|c| c.names[0].to_string()).collect();
        (d.columns, names)
    }

    #[test]
    fn clean_question_mentions_schema_names() {
        let (arch, names) = film_setup();
        let q = Query::select(0).and_where(1, CmpOp::Eq, Literal::Text("jerzy antczak".into()));
        let mut rng = Rng::seed_from_u64(1);
        let (toks, slots) = realize_question(arch, &names, &q, &NoiseConfig::clean(), &mut rng);
        let text = toks.join(" ");
        assert!(text.contains("film"), "select mention missing: {text}");
        assert!(text.contains("director"), "cond mention missing: {text}");
        assert!(text.contains("jerzy antczak"), "value missing: {text}");
        assert!(text.ends_with('?'));
        assert_eq!(slots.len(), 2);
    }

    #[test]
    fn gold_spans_point_at_the_right_tokens() {
        let (arch, names) = film_setup();
        let q = Query::select(0).and_where(1, CmpOp::Eq, Literal::Text("jerzy antczak".into()));
        let mut rng = Rng::seed_from_u64(2);
        let (toks, slots) = realize_question(arch, &names, &q, &NoiseConfig::clean(), &mut rng);
        let cond = &slots[1];
        let (a, bb) = cond.val_span.unwrap();
        assert_eq!(&toks[a..bb], &["jerzy", "antczak"]);
        let (ca, cb) = cond.col_span.unwrap();
        assert_eq!(&toks[ca..cb], &["director"]);
    }

    #[test]
    fn implicit_channel_drops_column_mention() {
        let (arch, names) = film_setup();
        let q = Query::select(0).and_where(1, CmpOp::Eq, Literal::Text("jerzy antczak".into()));
        let noise = NoiseConfig { implicit_rate: 1.0, ..NoiseConfig::clean() };
        let mut rng = Rng::seed_from_u64(3);
        let (toks, slots) = realize_question(arch, &names, &q, &noise, &mut rng);
        assert!(slots[1].col_span.is_none(), "column should be implicit");
        assert!(!toks.join(" ").contains("director"));
        assert!(toks.join(" ").contains("jerzy"));
    }

    #[test]
    fn paraphrase_channel_uses_long_phrase() {
        let (arch, names) = film_setup();
        let q = Query::select(0).and_where(1, CmpOp::Eq, Literal::Text("jerzy antczak".into()));
        let noise = NoiseConfig { paraphrase_rate: 1.0, ..NoiseConfig::clean() };
        let mut rng = Rng::seed_from_u64(4);
        let (toks, slots) = realize_question(arch, &names, &q, &noise, &mut rng);
        let text = toks.join(" ");
        assert!(text.contains("directed by"), "paraphrase not used: {text}");
        let (a, bb) = slots[1].col_span.unwrap();
        assert_eq!(&toks[a..bb], &["directed", "by"]);
    }

    #[test]
    fn aggregate_prefixes() {
        let (arch, names) = film_setup();
        let mut rng = Rng::seed_from_u64(5);
        for (agg, marker) in [
            (Agg::Count, vec!["how many", "number of"]),
            (Agg::Max, vec!["highest", "maximum", "largest"]),
            (Agg::Min, vec!["lowest", "minimum", "smallest"]),
            (Agg::Sum, vec!["total", "combined"]),
            (Agg::Avg, vec!["average", "mean"]),
        ] {
            let q = Query::select(4).with_agg(agg); // Release Year (numeric)
            let (toks, _) =
                realize_question(arch, &names, &q, &NoiseConfig::clean(), &mut rng);
            let text = toks.join(" ");
            assert!(
                marker.iter().any(|m| text.contains(m)),
                "{agg:?} prefix missing in: {text}"
            );
        }
    }

    #[test]
    fn ordering_ops_realize_op_words() {
        let (arch, names) = film_setup();
        let mut rng = Rng::seed_from_u64(6);
        let q = Query::select(0).and_where(4, CmpOp::Gt, Literal::Number(2000.0));
        let (toks, slots) =
            realize_question(arch, &names, &q, &NoiseConfig::clean(), &mut rng);
        let text = toks.join(" ");
        assert!(
            ["over", "above", "more than", "greater than"].iter().any(|m| text.contains(m)),
            "Gt op word missing: {text}"
        );
        assert!(slots[1].col_span.is_some(), "ordering conds are never implicit");
        assert!(text.contains("2000"));
    }

    #[test]
    fn multi_condition_question_has_all_slots() {
        let (arch, names) = film_setup();
        let mut rng = Rng::seed_from_u64(7);
        let q = Query::select(0)
            .and_where(1, CmpOp::Eq, Literal::Text("jerzy antczak".into()))
            .and_where(2, CmpOp::Eq, Literal::Text("piotr adamczyk".into()));
        let (toks, slots) = realize_question(arch, &names, &q, &NoiseConfig::clean(), &mut rng);
        assert_eq!(slots.len(), 3);
        let text = toks.join(" ");
        assert!(text.contains("jerzy antczak"));
        assert!(text.contains("piotr adamczyk"));
        // Both values must have spans even if columns are implicit.
        assert!(slots[1].val_span.is_some());
        assert!(slots[2].val_span.is_some());
    }

    #[test]
    fn inverted_channel_fronts_the_first_condition() {
        let (arch, names) = film_setup();
        let q = Query::select(0).and_where(1, CmpOp::Eq, Literal::Text("jerzy antczak".into()));
        let noise = NoiseConfig { inverted_rate: 1.0, ..NoiseConfig::clean() };
        let mut rng = Rng::seed_from_u64(12);
        let (toks, slots) = realize_question(arch, &names, &q, &noise, &mut rng);
        // The condition's value appears before the select mention.
        let sel = slots.iter().find(|s| s.role == SlotRole::Select).unwrap();
        let cond = slots.iter().find(|s| s.role == SlotRole::Cond(0)).unwrap();
        let (sa, _) = sel.col_span.unwrap();
        let (va, _) = cond.val_span.unwrap();
        assert!(va < sa, "inverted question should front the condition: {}", toks.join(" "));
        // Spans still align with the tokens.
        let (a, b) = cond.val_span.unwrap();
        assert_eq!(&toks[a..b], &["jerzy", "antczak"]);
    }

    #[test]
    fn realization_is_deterministic_per_seed() {
        let (arch, names) = film_setup();
        let q = Query::select(0).and_where(1, CmpOp::Eq, Literal::Text("jerzy antczak".into()));
        let run = |seed| {
            let mut rng = Rng::seed_from_u64(seed);
            realize_question(arch, &names, &q, &NoiseConfig::default(), &mut rng).0
        };
        assert_eq!(run(42), run(42));
    }

    #[test]
    fn plan_realization_matches_plain_realization() {
        let plan = TemplatePlan::compile();
        assert!(!plan.is_empty());
        for d in DOMAINS {
            let names: Vec<String> =
                d.columns.iter().map(|c| c.names[0].to_string()).collect();
            let q = Query::select(0)
                .and_where(1, CmpOp::Eq, Literal::Text("ada lovelace".into()))
                .and_where(2, CmpOp::Eq, Literal::Text("42nd street".into()));
            for seed in 0..64 {
                let mut r1 = Rng::seed_from_u64(seed);
                let mut r2 = Rng::seed_from_u64(seed);
                let plain =
                    realize_question(d.columns, &names, &q, &NoiseConfig::default(), &mut r1);
                let planned = realize_question_with(
                    &plan,
                    d.columns,
                    &names,
                    &q,
                    &NoiseConfig::default(),
                    &mut r2,
                );
                assert_eq!(plain, planned, "domain {} seed {seed}", d.name);
            }
        }
    }

    #[test]
    fn inflect_produces_nonidentical_similar_word() {
        let mut rng = Rng::seed_from_u64(8);
        for w in ["director", "venue", "population"] {
            let i = inflect(w, &mut rng);
            assert_ne!(i, w);
            assert!(nlidb_text::edit_similarity(&i, w) > 0.5, "{w} -> {i}");
        }
    }
}
