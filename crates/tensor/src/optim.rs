//! Optimizers and gradient clipping.
//!
//! The paper trains with gradient clipping at a global-norm threshold of
//! 5.0 (§VII-A2); [`clip_global_norm`] implements exactly that. Both SGD
//! (with optional momentum) and Adam are provided; the reproduction's
//! training loops default to Adam.

// Optimizer state is keyed by `ParamId` in a `BTreeMap`: any iteration
// over it (debug dumps, future state serialization) is id-ordered by
// construction, so no hash-order can ever reach trained parameters.
use std::collections::BTreeMap;

use crate::params::{ParamId, ParamStore};
use crate::tensor::Tensor;

/// Rescales all gradients so their concatenated L2 norm is at most
/// `max_norm`. Returns the pre-clip global norm (saturating to
/// `f32::INFINITY` only when the true `f64` norm exceeds `f32::MAX`).
///
/// The norm is accumulated in `f64`: with an `f32` accumulator, gradients
/// near `f32::MAX` overflowed `total` to infinity, which made
/// `scale = max_norm / total` collapse to `0` and *zeroed* every gradient
/// instead of clipping it — exactly the step where clipping matters most.
pub fn clip_global_norm(grads: &mut [(ParamId, Tensor)], max_norm: f32) -> f32 {
    let total = grads.iter().map(|(_, g)| g.norm_sq_f64()).sum::<f64>().sqrt();
    if total > max_norm as f64 && total > 0.0 {
        let scale = (max_norm as f64 / total) as f32;
        for (_, g) in grads.iter_mut() {
            for x in g.data_mut() {
                *x *= scale;
            }
        }
    }
    total as f32
}

/// Stochastic gradient descent with optional classical momentum.
#[derive(Debug, Clone)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
    /// Momentum coefficient; `0.0` disables momentum.
    pub momentum: f32,
    velocity: BTreeMap<ParamId, Tensor>,
}

impl Sgd {
    /// Plain SGD.
    pub fn new(lr: f32) -> Self {
        Sgd { lr, momentum: 0.0, velocity: BTreeMap::new() }
    }

    /// SGD with momentum.
    pub fn with_momentum(lr: f32, momentum: f32) -> Self {
        Sgd { lr, momentum, velocity: BTreeMap::new() }
    }

    /// Applies one update step.
    pub fn step(&mut self, store: &mut ParamStore, grads: &[(ParamId, Tensor)]) {
        for (pid, grad) in grads {
            if self.momentum > 0.0 {
                let v = self
                    .velocity
                    .entry(*pid)
                    .or_insert_with(|| Tensor::zeros(grad.rows(), grad.cols()));
                for (vi, &gi) in v.data_mut().iter_mut().zip(grad.data()) {
                    *vi = self.momentum * *vi + gi;
                }
                let v = self.velocity[pid].clone();
                store.get_mut(*pid).add_scaled(&v, -self.lr);
            } else {
                store.get_mut(*pid).add_scaled(grad, -self.lr);
            }
        }
    }
}

/// Adam optimizer (Kingma & Ba) with bias correction.
#[derive(Debug, Clone)]
pub struct Adam {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical stabilizer.
    pub eps: f32,
    t: u64,
    m: BTreeMap<ParamId, Tensor>,
    v: BTreeMap<ParamId, Tensor>,
}

impl Adam {
    /// Adam with standard hyper-parameters (β1=0.9, β2=0.999, ε=1e-8).
    pub fn new(lr: f32) -> Self {
        Adam { lr, beta1: 0.9, beta2: 0.999, eps: 1e-8, t: 0, m: BTreeMap::new(), v: BTreeMap::new() }
    }

    /// Number of steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// Applies one update step.
    pub fn step(&mut self, store: &mut ParamStore, grads: &[(ParamId, Tensor)]) {
        self.t += 1;
        let b1t = 1.0 - self.beta1.powi(self.t as i32);
        let b2t = 1.0 - self.beta2.powi(self.t as i32);
        for (pid, grad) in grads {
            let m = self
                .m
                .entry(*pid)
                .or_insert_with(|| Tensor::zeros(grad.rows(), grad.cols()));
            for (mi, &gi) in m.data_mut().iter_mut().zip(grad.data()) {
                *mi = self.beta1 * *mi + (1.0 - self.beta1) * gi;
            }
            let v = self
                .v
                .entry(*pid)
                .or_insert_with(|| Tensor::zeros(grad.rows(), grad.cols()));
            for (vi, &gi) in v.data_mut().iter_mut().zip(grad.data()) {
                *vi = self.beta2 * *vi + (1.0 - self.beta2) * gi * gi;
            }
            let m = &self.m[pid];
            let v = &self.v[pid];
            let target = store.get_mut(*pid);
            for ((w, &mi), &vi) in target.data_mut().iter_mut().zip(m.data()).zip(v.data()) {
                let m_hat = mi / b1t;
                let v_hat = vi / b2t;
                *w -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;

    fn quadratic_grad(store: &ParamStore, pid: ParamId) -> Vec<(ParamId, Tensor)> {
        // loss = sum(w^2); grad = 2w
        let mut g = Graph::new();
        let w = g.param(store, pid);
        let sq = g.mul(w, w);
        let loss = g.sum_all(sq);
        g.backward(loss);
        g.param_grads()
    }

    #[test]
    fn sgd_descends_quadratic() {
        let mut store = ParamStore::new();
        let pid = store.add("w", Tensor::row_vector(&[4.0, -3.0]));
        let mut opt = Sgd::new(0.1);
        for _ in 0..100 {
            let grads = quadratic_grad(&store, pid);
            opt.step(&mut store, &grads);
        }
        assert!(store.get(pid).norm() < 1e-3, "did not converge: {:?}", store.get(pid));
    }

    #[test]
    fn sgd_momentum_descends_quadratic() {
        let mut store = ParamStore::new();
        let pid = store.add("w", Tensor::row_vector(&[4.0, -3.0]));
        let mut opt = Sgd::with_momentum(0.05, 0.9);
        for _ in 0..200 {
            let grads = quadratic_grad(&store, pid);
            opt.step(&mut store, &grads);
        }
        assert!(store.get(pid).norm() < 1e-2);
    }

    #[test]
    fn adam_descends_quadratic() {
        let mut store = ParamStore::new();
        let pid = store.add("w", Tensor::row_vector(&[4.0, -3.0]));
        let mut opt = Adam::new(0.1);
        for _ in 0..300 {
            let grads = quadratic_grad(&store, pid);
            opt.step(&mut store, &grads);
        }
        assert!(store.get(pid).norm() < 1e-2, "did not converge: {:?}", store.get(pid));
    }

    #[test]
    fn clip_rescales_only_above_threshold() {
        let mut store = ParamStore::new();
        let p1 = store.add("a", Tensor::row_vector(&[0.0]));
        let p2 = store.add("b", Tensor::row_vector(&[0.0]));
        let mut grads = vec![
            (p1, Tensor::row_vector(&[3.0])),
            (p2, Tensor::row_vector(&[4.0])),
        ];
        let norm = clip_global_norm(&mut grads, 5.0);
        assert!((norm - 5.0).abs() < 1e-6);
        // exactly at the threshold: unchanged
        assert_eq!(grads[0].1.data(), &[3.0]);

        let mut grads = vec![
            (p1, Tensor::row_vector(&[6.0])),
            (p2, Tensor::row_vector(&[8.0])),
        ];
        let norm = clip_global_norm(&mut grads, 5.0);
        assert!((norm - 10.0).abs() < 1e-5);
        let clipped: f32 =
            grads.iter().map(|(_, g)| g.norm_sq()).sum::<f32>().sqrt();
        assert!((clipped - 5.0).abs() < 1e-5);
    }

    #[test]
    fn clip_survives_gradients_near_f32_max() {
        // Regression: an f32 accumulator overflowed `total` to inf, making
        // `scale = max_norm / inf = 0` and zeroing every gradient.
        let mut store = ParamStore::new();
        let p1 = store.add("a", Tensor::row_vector(&[0.0, 0.0]));
        let p2 = store.add("b", Tensor::row_vector(&[0.0]));
        let mut grads = vec![
            (p1, Tensor::row_vector(&[3.0e38, -3.0e38])),
            (p2, Tensor::row_vector(&[1.0e38])),
        ];
        let norm = clip_global_norm(&mut grads, 5.0);
        assert!(norm > 0.0, "pre-clip norm must be positive, got {norm}");
        for (_, g) in &grads {
            assert!(
                g.data().iter().all(|x| x.abs() > 0.0 && x.is_finite()),
                "clipped gradients must be nonzero and finite: {:?}",
                g.data()
            );
        }
        let clipped = grads.iter().map(|(_, g)| g.norm_sq_f64()).sum::<f64>().sqrt();
        assert!((clipped - 5.0).abs() < 1e-3, "clipped norm {clipped} != 5.0");
        // Sign is preserved through the rescale.
        assert!(grads[0].1.data()[1] < 0.0);
    }

    #[test]
    fn adam_counts_steps() {
        let mut store = ParamStore::new();
        let pid = store.add("w", Tensor::row_vector(&[1.0]));
        let mut opt = Adam::new(0.01);
        assert_eq!(opt.steps(), 0);
        let grads = quadratic_grad(&store, pid);
        opt.step(&mut store, &grads);
        assert_eq!(opt.steps(), 1);
    }
}
