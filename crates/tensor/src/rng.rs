//! Seeded, portable pseudo-random number generation.
//!
//! The whole workspace draws randomness from this one generator so that a
//! fixed seed yields byte-identical corpora, parameter initializations,
//! shuffles, and therefore experiment output on every platform — the
//! determinism contract stated in `DESIGN.md`. The core is PCG32
//! (XSH-RR output over a 64-bit LCG state) seeded through SplitMix64;
//! both algorithms are tiny, well studied, and defined purely over
//! wrapping integer arithmetic, so sequences cannot drift across
//! architectures or compiler versions.
//!
//! The API mirrors the subset of `rand` the reproduction used before the
//! hermetic-build migration: [`Rng::seed_from_u64`], [`Rng::gen_range`]
//! over integer and float ranges, [`Rng::gen`] for unit-interval floats,
//! plus [`Rng::normal`] (Box–Muller), [`Rng::shuffle`] (Fisher–Yates),
//! and sampling helpers.

const PCG_MULT: u64 = 6364136223846793005;

/// SplitMix64: the seed-expansion step (also usable standalone).
///
/// Advances `state` and returns a well-mixed 64-bit value. Used to turn a
/// single `u64` seed into the PCG state/stream pair.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Derives an independent stream seed from `(seed, stream)`.
///
/// The sharded corpus/training plane keys every unit of parallel work by
/// an integer stream index (shard number, epoch number, example id) and
/// seeds a fresh generator from `derive_stream(seed, index)` — so any
/// unit is reproducible in isolation, without replaying the draws of the
/// units before it. For a fixed `seed` the map `stream -> derived seed`
/// is injective (an offset followed by the SplitMix64 bijection), so
/// distinct streams never collide, and the output is well mixed even for
/// consecutive stream indices. Composite keys chain derivations:
/// `derive_stream(derive_stream(seed, epoch), shard)`.
pub fn derive_stream(seed: u64, stream: u64) -> u64 {
    let mut s = seed;
    let mixed = splitmix64(&mut s);
    let mut t = stream.wrapping_add(mixed);
    splitmix64(&mut t)
}

/// A seeded PCG32 generator.
///
/// Not cryptographic; statistical quality is more than sufficient for
/// initialization, sampling, and corpus synthesis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    state: u64,
    inc: u64,
}

impl Rng {
    /// Creates a generator from a 64-bit seed (SplitMix64 expansion).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let initseq = splitmix64(&mut sm);
        let initstate = splitmix64(&mut sm);
        let inc = (initseq << 1) | 1;
        let mut rng = Rng { state: 0, inc };
        rng.next_u32();
        rng.state = rng.state.wrapping_add(initstate);
        rng.next_u32();
        rng
    }

    /// A generator for stream `stream` of master seed `seed` — shorthand
    /// for `Rng::seed_from_u64(derive_stream(seed, stream))`. See
    /// [`derive_stream`].
    pub fn for_stream(seed: u64, stream: u64) -> Self {
        Rng::seed_from_u64(derive_stream(seed, stream))
    }

    /// Next 32 random bits (PCG-XSH-RR).
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        let old = self.state;
        self.state = old.wrapping_mul(PCG_MULT).wrapping_add(self.inc);
        let xorshifted = (((old >> 18) ^ old) >> 27) as u32;
        let rot = (old >> 59) as u32;
        xorshifted.rotate_right(rot)
    }

    /// Next 64 random bits (two 32-bit outputs).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let hi = self.next_u32() as u64;
        let lo = self.next_u32() as u64;
        (hi << 32) | lo
    }

    /// A uniform draw from a range; see [`SampleRange`] for supported
    /// range/element types. Mirrors `rand::Rng::gen_range`.
    ///
    /// # Panics
    /// Panics on an empty range.
    #[inline]
    pub fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// A draw from the type's standard distribution: unit interval for
    /// floats, full range for integers, fair coin for `bool`.
    #[inline]
    pub fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        (self.gen::<f64>()) < p
    }

    /// A standard-normal draw via Box–Muller (cosine branch).
    pub fn gauss(&mut self) -> f64 {
        // Guard u1 away from 0 so ln() stays finite.
        let u1 = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let u1 = u1.max(1e-300);
        let u2 = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// A normal draw with the given mean and standard deviation.
    pub fn normal(&mut self, mean: f32, std: f32) -> f32 {
        mean + std * self.gauss() as f32
    }

    /// In-place Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.gen_range(0..=i);
            xs.swap(i, j);
        }
    }

    /// A uniformly chosen element.
    ///
    /// # Panics
    /// Panics on an empty slice.
    pub fn choose<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        assert!(!xs.is_empty(), "choose on empty slice");
        &xs[self.gen_range(0..xs.len())]
    }

    /// `k` distinct indices drawn uniformly from `0..n` (order random).
    /// Returns all of `0..n` shuffled when `k >= n`.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..n).collect();
        self.shuffle(&mut idx);
        idx.truncate(k.min(n));
        idx
    }
}

/// Range types [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws a uniform value from the range.
    fn sample(self, rng: &mut Rng) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            #[inline]
            fn sample(self, rng: &mut Rng) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            #[inline]
            fn sample(self, rng: &mut Rng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range on empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + (rng.next_u64() % span as u64) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, i64, i32);

macro_rules! impl_float_range {
    ($($t:ty => $unit:ident),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            #[inline]
            fn sample(self, rng: &mut Rng) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                self.start + (self.end - self.start) * $unit(rng)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            #[inline]
            fn sample(self, rng: &mut Rng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range on empty range");
                lo + (hi - lo) * $unit(rng)
            }
        }
    )*};
}

#[inline]
fn unit_f32(rng: &mut Rng) -> f32 {
    (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
}

#[inline]
fn unit_f64(rng: &mut Rng) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl_float_range!(f32 => unit_f32, f64 => unit_f64);

/// Types [`Rng::gen`] can draw without an explicit range.
pub trait Standard {
    /// Draws from the type's standard distribution.
    fn sample(rng: &mut Rng) -> Self;
}

impl Standard for f32 {
    #[inline]
    fn sample(rng: &mut Rng) -> f32 {
        unit_f32(rng)
    }
}

impl Standard for f64 {
    #[inline]
    fn sample(rng: &mut Rng) -> f64 {
        unit_f64(rng)
    }
}

impl Standard for u32 {
    #[inline]
    fn sample(rng: &mut Rng) -> u32 {
        rng.next_u32()
    }
}

impl Standard for u64 {
    #[inline]
    fn sample(rng: &mut Rng) -> u64 {
        rng.next_u64()
    }
}

impl Standard for bool {
    #[inline]
    fn sample(rng: &mut Rng) -> bool {
        rng.next_u32() & 1 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The PCG32 reference sequence: seeding must stay frozen forever,
    /// since checkpoints and experiment outputs depend on it.
    #[test]
    fn sequence_is_frozen() {
        let mut rng = Rng::seed_from_u64(42);
        let first: Vec<u32> = (0..4).map(|_| rng.next_u32()).collect();
        assert_eq!(first, frozen_first_four());
    }

    fn frozen_first_four() -> Vec<u32> {
        // Computed once from the implementation; any change to seeding or
        // output permutation breaks this and must be rejected.
        let mut sm = 42u64;
        let initseq = splitmix64(&mut sm);
        let initstate = splitmix64(&mut sm);
        let mut state: u64 = 0;
        let inc = (initseq << 1) | 1;
        let mut out = Vec::new();
        let step = |state: &mut u64| {
            let old = *state;
            *state = old.wrapping_mul(PCG_MULT).wrapping_add(inc);
            let xorshifted = (((old >> 18) ^ old) >> 27) as u32;
            xorshifted.rotate_right((old >> 59) as u32)
        };
        step(&mut state);
        state = state.wrapping_add(initstate);
        step(&mut state);
        for _ in 0..4 {
            out.push(step(&mut state));
        }
        out
    }

    /// Stream derivation must stay frozen forever too: shard files on
    /// disk and streaming-trained checkpoints are keyed by it.
    #[test]
    fn stream_derivation_is_frozen() {
        // Reference values computed from the definition: mix the seed
        // once with SplitMix64, offset the stream, mix again.
        let expect = |seed: u64, stream: u64| {
            let mut s = seed;
            let mixed = splitmix64(&mut s);
            let mut t = stream.wrapping_add(mixed);
            splitmix64(&mut t)
        };
        for (seed, stream) in [(0, 0), (42, 0), (42, 1), (42, 2), (7, u64::MAX)] {
            assert_eq!(derive_stream(seed, stream), expect(seed, stream));
        }
        // And one fully literal pin so the definition itself can't drift.
        assert_eq!(derive_stream(42, 3), {
            let mut t = 3u64.wrapping_add({
                let mut s = 42u64;
                splitmix64(&mut s)
            });
            splitmix64(&mut t)
        });
    }

    #[test]
    fn stream_derivation_is_injective_per_seed() {
        let mut seen = std::collections::BTreeSet::new();
        for stream in 0..4096u64 {
            assert!(seen.insert(derive_stream(99, stream)), "collision at stream {stream}");
        }
        // Different master seeds give different stream families.
        assert_ne!(derive_stream(1, 5), derive_stream(2, 5));
    }

    #[test]
    fn for_stream_matches_manual_derivation() {
        let mut a = Rng::for_stream(13, 21);
        let mut b = Rng::seed_from_u64(derive_stream(13, 21));
        let va: Vec<u32> = (0..8).map(|_| a.next_u32()).collect();
        let vb: Vec<u32> = (0..8).map(|_| b.next_u32()).collect();
        assert_eq!(va, vb);
    }

    #[test]
    fn same_seed_same_sequence_different_seed_different() {
        let mut a = Rng::seed_from_u64(7);
        let mut b = Rng::seed_from_u64(7);
        let mut c = Rng::seed_from_u64(8);
        let va: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Rng::seed_from_u64(1);
        for _ in 0..2000 {
            let u = rng.gen_range(3usize..17);
            assert!((3..17).contains(&u));
            let i = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&i));
            let f = rng.gen_range(-1.0f32..1.0);
            assert!((-1.0..1.0).contains(&f));
            let g = rng.gen_range(-0.5f32..=0.5);
            assert!((-0.5..=0.5).contains(&g));
            let p: f32 = rng.gen();
            assert!((0.0..1.0).contains(&p));
        }
    }

    #[test]
    fn integer_ranges_hit_both_endpoints() {
        let mut rng = Rng::seed_from_u64(2);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..=3)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Rng::seed_from_u64(3);
        let mut xs: Vec<usize> = (0..50).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(xs, (0..50).collect::<Vec<_>>(), "shuffle left input sorted");
    }

    #[test]
    fn gaussian_moments_are_plausible() {
        let mut rng = Rng::seed_from_u64(4);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.gauss()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
        assert!(samples.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn sampling_helpers() {
        let mut rng = Rng::seed_from_u64(5);
        let xs = [10, 20, 30];
        for _ in 0..50 {
            assert!(xs.contains(rng.choose(&xs)));
        }
        let idx = rng.sample_indices(10, 4);
        assert_eq!(idx.len(), 4);
        let mut uniq = idx.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), 4);
        assert!(idx.iter().all(|&i| i < 10));
        assert_eq!(rng.sample_indices(3, 9).len(), 3);
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = Rng::seed_from_u64(6);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2200..2800).contains(&hits), "hits {hits}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
