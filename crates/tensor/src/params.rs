//! Named parameter storage shared by all models.
//!
//! Parameters live outside the per-example [`crate::graph::Graph`]: a graph
//! is rebuilt for every forward pass (define-by-run), while the
//! [`ParamStore`] persists across passes and is updated by an optimizer in
//! [`crate::optim`]. Binding a parameter into a graph with
//! [`crate::graph::Graph::param`] records the (node, param) association so
//! gradients can be routed back after `backward`.

use std::collections::HashMap;

use nlidb_json::{FromJson, Json, JsonError, ToJson};

use crate::tensor::Tensor;

/// Opaque handle to a parameter in a [`ParamStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ParamId(pub(crate) usize);

impl ToJson for ParamId {
    fn to_json(&self) -> Json {
        self.0.to_json()
    }
}

impl FromJson for ParamId {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        Ok(ParamId(usize::from_json(j)?))
    }
}

impl ParamId {
    /// Raw index (stable for the lifetime of the store).
    pub fn index(self) -> usize {
        self.0
    }
}

/// A collection of named, trainable tensors.
#[derive(Debug, Clone, Default)]
pub struct ParamStore {
    names: Vec<String>,
    values: Vec<Tensor>,
    // Derived from `names`; rebuilt after deserialization, never serialized.
    index: HashMap<String, ParamId>,
}

impl ToJson for ParamStore {
    fn to_json(&self) -> Json {
        Json::obj([("names", self.names.to_json()), ("values", self.values.to_json())])
    }
}

impl FromJson for ParamStore {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        let mut store = ParamStore {
            names: j.req("names")?,
            values: j.req("values")?,
            index: HashMap::new(),
        };
        if store.names.len() != store.values.len() {
            return Err(JsonError::new(format!(
                "param store has {} names but {} values",
                store.names.len(),
                store.values.len()
            )));
        }
        store.rebuild_index();
        Ok(store)
    }
}

impl ParamStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a parameter under a unique name.
    ///
    /// # Panics
    /// Panics if the name is already registered.
    pub fn add(&mut self, name: impl Into<String>, value: Tensor) -> ParamId {
        let name = name.into();
        assert!(!self.index.contains_key(&name), "duplicate parameter name: {name}");
        let id = ParamId(self.values.len());
        self.index.insert(name.clone(), id);
        self.names.push(name);
        self.values.push(value);
        id
    }

    /// Looks up a parameter id by name.
    pub fn id_of(&self, name: &str) -> Option<ParamId> {
        self.index.get(name).copied()
    }

    /// Parameter value.
    pub fn get(&self, id: ParamId) -> &Tensor {
        &self.values[id.0]
    }

    /// Mutable parameter value (used by optimizers).
    pub fn get_mut(&mut self, id: ParamId) -> &mut Tensor {
        &mut self.values[id.0]
    }

    /// Parameter name.
    pub fn name(&self, id: ParamId) -> &str {
        &self.names[id.0]
    }

    /// Number of registered parameters.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Total number of scalar parameters across all tensors.
    pub fn num_scalars(&self) -> usize {
        self.values.iter().map(Tensor::len).sum()
    }

    /// Iterates over `(id, name, value)` triples.
    pub fn iter(&self) -> impl Iterator<Item = (ParamId, &str, &Tensor)> {
        self.names
            .iter()
            .zip(&self.values)
            .enumerate()
            .map(|(i, (n, v))| (ParamId(i), n.as_str(), v))
    }

    /// Serializes the store to a JSON string (checkpointing).
    pub fn to_json_string(&self) -> String {
        self.to_json().to_string()
    }

    /// Restores a store from JSON produced by [`ParamStore::to_json_string`].
    pub fn from_json_str(json: &str) -> Result<Self, JsonError> {
        Self::from_json(&Json::parse(json)?)
    }

    fn rebuild_index(&mut self) {
        self.index = self
            .names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.clone(), ParamId(i)))
            .collect();
    }

    /// True if every parameter value is finite (training-sanity check).
    pub fn all_finite(&self) -> bool {
        self.values.iter().all(Tensor::all_finite)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_lookup() {
        let mut store = ParamStore::new();
        let id = store.add("w", Tensor::zeros(2, 3));
        assert_eq!(store.id_of("w"), Some(id));
        assert_eq!(store.get(id).shape(), (2, 3));
        assert_eq!(store.name(id), "w");
        assert_eq!(store.len(), 1);
        assert_eq!(store.num_scalars(), 6);
    }

    #[test]
    #[should_panic(expected = "duplicate parameter name")]
    fn duplicate_name_panics() {
        let mut store = ParamStore::new();
        store.add("w", Tensor::zeros(1, 1));
        store.add("w", Tensor::zeros(1, 1));
    }

    #[test]
    fn json_roundtrip_preserves_values_and_names() {
        let mut store = ParamStore::new();
        store.add("a", Tensor::row_vector(&[1.5, -2.0]));
        store.add("b", Tensor::zeros(2, 2));
        let json = store.to_json_string();
        let restored = ParamStore::from_json_str(&json).unwrap();
        assert_eq!(restored.len(), 2);
        let a = restored.id_of("a").unwrap();
        assert_eq!(restored.get(a).data(), &[1.5, -2.0]);
    }

    #[test]
    fn iter_yields_in_insertion_order() {
        let mut store = ParamStore::new();
        store.add("x", Tensor::zeros(1, 1));
        store.add("y", Tensor::zeros(1, 2));
        let names: Vec<&str> = store.iter().map(|(_, n, _)| n).collect();
        assert_eq!(names, vec!["x", "y"]);
    }
}
