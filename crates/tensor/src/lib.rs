//! # nlidb-tensor
//!
//! A deliberately small, auditable reverse-mode autograd library that powers
//! the neural components of the NLIDB reproduction (ICDE 2020, Wang et al.).
//!
//! Why build this instead of binding an existing framework: the paper's core
//! technique — the adversarial text method of §IV-C — reads *input-side*
//! gradients `dL/dE(w)` off a trained classifier. That requires a training
//! stack with first-class access to gradients of arbitrary interior nodes,
//! which mature Rust DL bindings do not expose cleanly; a ~1k-line tape
//! autograd covers everything the paper needs (LSTM/GRU cells, attention,
//! char-CNN, copy-mechanism decoding) while staying fully deterministic and
//! dependency-free.
//!
//! ## Layout
//! - [`tensor`]: dense row-major `f32` matrices.
//! - [`matmul`]: the matmul kernels behind [`Tensor::matmul`] — scalar
//!   reference, column-chunked single-row, and cache-blocked packed-B
//!   with runtime SIMD dispatch — all bitwise-identical per cell.
//! - [`graph`]: the define-by-run tape ([`Graph`], [`NodeId`]) with forward
//!   ops and reverse-mode [`Graph::backward`].
//! - [`params`]: persistent named parameters ([`ParamStore`]).
//! - [`optim`]: SGD/Adam and global-norm gradient clipping.
//! - [`gradcheck`]: finite-difference verification utilities.
//! - [`pool`]: the deterministic scoped thread pool behind every parallel
//!   construct (`NLIDB_THREADS` knob; parallel results are bitwise equal
//!   to serial).
//! - [`rng`]: the workspace-wide seeded PRNG ([`Rng`], PCG32) behind every
//!   random draw in the reproduction.
//!
//! The autograd tape and the pool are instrumented with `nlidb-trace`
//! (per-`Op` forward/backward timings, pool task counters), active only
//! under `NLIDB_TRACE=1`; instrumentation never alters computation, so
//! results are byte-identical with tracing on or off.
//!
//! ## Example
//! ```
//! use nlidb_tensor::{Graph, ParamStore, Tensor, optim::Adam};
//!
//! let mut store = ParamStore::new();
//! let w = store.add("w", Tensor::row_vector(&[3.0]));
//! let mut opt = Adam::new(0.1);
//! for _ in 0..200 {
//!     let mut g = Graph::new();
//!     let wn = g.param(&store, w);
//!     let sq = g.mul(wn, wn);
//!     let loss = g.sum_all(sq);
//!     g.backward(loss);
//!     let grads = g.param_grads();
//!     opt.step(&mut store, &grads);
//! }
//! assert!(store.get(w).data()[0].abs() < 0.05);
//! ```

#![warn(missing_docs)]

pub mod gradcheck;
pub mod graph;
pub mod matmul;
pub mod optim;
pub mod params;
pub mod pool;
pub mod rng;
pub mod tensor;

pub use graph::{softmax_rows_value, GateAct, Graph, NodeId};
pub use matmul::{matmul_kernel, set_matmul_kernel, MatmulKernel};
pub use params::{ParamId, ParamStore};
pub use rng::Rng;
pub use tensor::Tensor;
