//! Define-by-run reverse-mode autograd on a flat tape.
//!
//! A [`Graph`] is an arena of nodes created in topological order; every op
//! method immediately computes its forward value and records enough
//! information to run the backward pass. Calling [`Graph::backward`] on a
//! scalar loss walks the tape in reverse, accumulating gradients into every
//! node that (transitively) depends on a [`Graph::param`] or
//! [`Graph::input`] node.
//!
//! `input` nodes exist specifically for the paper's adversarial text method
//! (§IV-C): the Fast Gradient Method needs `dL/dE(w)` for each *input*
//! embedding row, so word/char embeddings of the question are fed in as
//! gradient-tracked inputs and their gradients read back after `backward`.
//!
//! ## Buffer arena
//!
//! Every forward value, backward temporary, and gradient buffer is drawn
//! from an internal free-list arena keyed by element count, and
//! [`Graph::reset`] recycles all of them for the next tape. Hot loops
//! (decode steps, per-example training) reuse one `Graph` via `reset()`
//! instead of constructing a fresh one, so steady-state forward/backward
//! passes allocate (almost) nothing. Recycling never changes values: a
//! recycled buffer is either fully overwritten or explicitly zeroed before
//! use, so results are bitwise identical to a fresh graph.

use nlidb_trace as trace;

use crate::params::{ParamId, ParamStore};
use crate::tensor::Tensor;

/// Handle to a node in a [`Graph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeId(usize);

impl NodeId {
    /// Raw tape index.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Activation applied by a fused GRU gate ([`Graph::fused_gate`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GateAct {
    /// Logistic sigmoid (reset/update gates).
    Sigmoid,
    /// Hyperbolic tangent (candidate state).
    Tanh,
}

/// The operation that produced a node, with the data needed for backward.
#[derive(Debug, Clone)]
enum Op {
    /// Constant leaf; gradients are not tracked.
    Leaf,
    /// Gradient-tracked leaf (model input for adversarial analysis).
    Input,
    /// Gradient-tracked leaf bound to a stored parameter (see `param_bindings`).
    Param,
    Add(NodeId, NodeId),
    Sub(NodeId, NodeId),
    Mul(NodeId, NodeId),
    Scale(NodeId, f32),
    /// `[n, d] + [1, d]` row broadcast.
    AddRow(NodeId, NodeId),
    /// `[n, d] * [1, d]` row broadcast.
    MulRow(NodeId, NodeId),
    Matmul(NodeId, NodeId),
    Transpose(NodeId),
    Sigmoid(NodeId),
    Tanh(NodeId),
    Relu(NodeId),
    SoftmaxRows(NodeId),
    LogSoftmaxRows(NodeId),
    HCat(NodeId, NodeId),
    VCat(NodeId, NodeId),
    /// Rows `[a, b)` of the source.
    RowSlice(NodeId, usize, usize),
    /// Row gather (embedding lookup); duplicates accumulate.
    GatherRows(NodeId, Vec<usize>),
    /// `[1, d] -> [n, d]`.
    RepeatRows(NodeId, usize),
    SumAll(NodeId),
    MeanRows(NodeId),
    SumRows(NodeId),
    /// Sliding-window flatten: `[n, d] -> [n-k+1, k*d]`.
    Unfold(NodeId, usize),
    /// Elementwise `exp`.
    Exp(NodeId),
    /// Elementwise natural log.
    Ln(NodeId),
    /// Adds a constant scalar to every element (constant not needed for backward).
    AddScalar(NodeId),
    /// Mean negative log-likelihood over rows of log-probabilities.
    PickNll(NodeId, Vec<usize>),
    /// Mean binary cross-entropy with logits against fixed targets.
    BceWithLogits(NodeId, Tensor),
    /// Fused GRU gate: `act((x @ wx + h @ wh) + b)` in one tape node.
    FusedGate { x: NodeId, wx: NodeId, h: NodeId, wh: NodeId, b: NodeId, act: GateAct },
    /// Fused GRU state blend: `(1 - z) * n + z * h_prev` per cell.
    FusedGruCombine { z: NodeId, n: NodeId, h_prev: NodeId },
}

struct Node {
    value: Tensor,
    op: Op,
    requires_grad: bool,
}

/// Free-list buffer recycler keyed by exact element count.
///
/// Buffers handed out by [`Arena::scratch`] have unspecified contents and
/// must be fully overwritten by the caller; [`Arena::zeroed`] clears them
/// first. Each size class is capped so pathological shape churn cannot
/// grow the free lists without bound.
#[derive(Default)]
struct Arena {
    free: std::collections::BTreeMap<usize, Vec<Vec<f32>>>,
}

/// Maximum recycled buffers retained per size class.
const ARENA_MAX_PER_CLASS: usize = 64;

impl Arena {
    fn take(&mut self, len: usize) -> Option<Vec<f32>> {
        self.free.get_mut(&len).and_then(Vec::pop)
    }

    /// A `[rows, cols]` tensor with unspecified contents; the caller must
    /// overwrite every element before the value is observed.
    fn scratch(&mut self, rows: usize, cols: usize) -> Tensor {
        match self.take(rows * cols) {
            Some(buf) => Tensor::from_vec(rows, cols, buf),
            None => Tensor::zeros(rows, cols),
        }
    }

    /// A `[rows, cols]` tensor of zeros (recycled buffers are cleared).
    fn zeroed(&mut self, rows: usize, cols: usize) -> Tensor {
        match self.take(rows * cols) {
            Some(mut buf) => {
                buf.fill(0.0);
                Tensor::from_vec(rows, cols, buf)
            }
            None => Tensor::zeros(rows, cols),
        }
    }

    /// An empty `Vec` with capacity for `len` elements, for
    /// `extend_from_slice`-style builders.
    fn empty(&mut self, len: usize) -> Vec<f32> {
        match self.take(len) {
            Some(mut buf) => {
                buf.clear();
                buf
            }
            None => Vec::with_capacity(len),
        }
    }

    fn give(&mut self, t: Tensor) {
        self.give_vec(t.into_vec());
    }

    fn give_vec(&mut self, v: Vec<f32>) {
        if v.is_empty() {
            return;
        }
        let class = self.free.entry(v.len()).or_default();
        if class.len() < ARENA_MAX_PER_CLASS {
            class.push(v);
        }
    }
}

/// A single forward/backward tape.
#[derive(Default)]
pub struct Graph {
    nodes: Vec<Node>,
    grads: Vec<Option<Tensor>>,
    param_bindings: Vec<(NodeId, ParamId)>,
    arena: Arena,
}

impl Graph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Clears the tape for reuse, recycling every node value and gradient
    /// buffer into the internal arena.
    ///
    /// Hot loops (decode steps, per-example training) call this instead of
    /// constructing a fresh `Graph` so that the next forward/backward pass
    /// reuses this tape's buffers instead of reallocating them. All
    /// `NodeId`s from before the reset are invalidated.
    pub fn reset(&mut self) {
        for node in self.nodes.drain(..) {
            if let Op::BceWithLogits(_, targets) = node.op {
                self.arena.give(targets);
            }
            self.arena.give(node.value);
        }
        for slot in self.grads.drain(..) {
            if let Some(t) = slot {
                self.arena.give(t);
            }
        }
        self.param_bindings.clear();
    }

    fn push(&mut self, value: Tensor, op: Op, requires_grad: bool) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(Node { value, op, requires_grad });
        id
    }

    fn rg(&self, id: NodeId) -> bool {
        self.nodes[id.0].requires_grad
    }

    /// Number of nodes on the tape.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tape is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Forward value of a node.
    pub fn value(&self, id: NodeId) -> &Tensor {
        &self.nodes[id.0].value
    }

    /// Gradient of the last `backward` loss w.r.t. a node, if tracked.
    pub fn grad(&self, id: NodeId) -> Option<&Tensor> {
        self.grads.get(id.0).and_then(Option::as_ref)
    }

    /// Constant leaf (no gradient).
    pub fn leaf(&mut self, value: Tensor) -> NodeId {
        self.push(value, Op::Leaf, false)
    }

    /// Gradient-tracked input leaf (see module docs: FGM input gradients).
    pub fn input(&mut self, value: Tensor) -> NodeId {
        self.push(value, Op::Input, true)
    }

    /// Binds a stored parameter into this graph.
    pub fn param(&mut self, store: &ParamStore, id: ParamId) -> NodeId {
        let src = store.get(id);
        let mut value = self.arena.scratch(src.rows(), src.cols());
        value.data_mut().copy_from_slice(src.data());
        let node = self.push(value, Op::Param, true);
        self.param_bindings.push((node, id));
        node
    }

    /// Elementwise addition.
    pub fn add(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let _t = trace::span("graph.fwd.add");
        let (rows, cols) = self.nodes[a.0].value.shape();
        let mut v = self.arena.scratch(rows, cols);
        self.nodes[a.0].value.zip_into(&self.nodes[b.0].value, |x, y| x + y, &mut v);
        let rg = self.rg(a) || self.rg(b);
        self.push(v, Op::Add(a, b), rg)
    }

    /// Elementwise subtraction `a - b`.
    pub fn sub(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let _t = trace::span("graph.fwd.sub");
        let (rows, cols) = self.nodes[a.0].value.shape();
        let mut v = self.arena.scratch(rows, cols);
        self.nodes[a.0].value.zip_into(&self.nodes[b.0].value, |x, y| x - y, &mut v);
        let rg = self.rg(a) || self.rg(b);
        self.push(v, Op::Sub(a, b), rg)
    }

    /// Elementwise (Hadamard) product.
    pub fn mul(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let _t = trace::span("graph.fwd.mul");
        let (rows, cols) = self.nodes[a.0].value.shape();
        let mut v = self.arena.scratch(rows, cols);
        self.nodes[a.0].value.zip_into(&self.nodes[b.0].value, |x, y| x * y, &mut v);
        let rg = self.rg(a) || self.rg(b);
        self.push(v, Op::Mul(a, b), rg)
    }

    /// Multiplication by a constant scalar.
    pub fn scale(&mut self, a: NodeId, s: f32) -> NodeId {
        let _t = trace::span("graph.fwd.scale");
        let v = self.map_node(a, |x| x * s);
        let rg = self.rg(a);
        self.push(v, Op::Scale(a, s), rg)
    }

    /// Arena-backed elementwise map of a node's value.
    fn map_node(&mut self, a: NodeId, f: impl Fn(f32) -> f32 + Sync) -> Tensor {
        let (rows, cols) = self.nodes[a.0].value.shape();
        let mut v = self.arena.scratch(rows, cols);
        self.nodes[a.0].value.map_into(f, &mut v);
        v
    }

    /// Adds a `[1, d]` row vector to every row of a `[n, d]` matrix.
    pub fn add_row(&mut self, a: NodeId, row: NodeId) -> NodeId {
        let _t = trace::span("graph.fwd.add_row");
        let (rows, cols) = self.nodes[a.0].value.shape();
        assert_eq!(self.nodes[row.0].value.rows(), 1, "add_row rhs must be [1, d]");
        assert_eq!(cols, self.nodes[row.0].value.cols(), "add_row width mismatch");
        let mut v = self.arena.scratch(rows, cols);
        for i in 0..rows {
            let m = self.nodes[a.0].value.row(i);
            let r = self.nodes[row.0].value.row(0);
            for ((o, &x), &b) in v.row_mut(i).iter_mut().zip(m).zip(r) {
                *o = x + b;
            }
        }
        let rg = self.rg(a) || self.rg(row);
        self.push(v, Op::AddRow(a, row), rg)
    }

    /// Multiplies every row of a `[n, d]` matrix by a `[1, d]` row vector.
    pub fn mul_row(&mut self, a: NodeId, row: NodeId) -> NodeId {
        let _t = trace::span("graph.fwd.mul_row");
        let (rows, cols) = self.nodes[a.0].value.shape();
        assert_eq!(self.nodes[row.0].value.rows(), 1, "mul_row rhs must be [1, d]");
        assert_eq!(cols, self.nodes[row.0].value.cols(), "mul_row width mismatch");
        let mut v = self.arena.scratch(rows, cols);
        for i in 0..rows {
            let m = self.nodes[a.0].value.row(i);
            let r = self.nodes[row.0].value.row(0);
            for ((o, &x), &b) in v.row_mut(i).iter_mut().zip(m).zip(r) {
                *o = x * b;
            }
        }
        let rg = self.rg(a) || self.rg(row);
        self.push(v, Op::MulRow(a, row), rg)
    }

    /// Matrix product.
    pub fn matmul(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let _t = trace::span("graph.fwd.matmul");
        let rows = self.nodes[a.0].value.rows();
        let cols = self.nodes[b.0].value.cols();
        let mut v = self.arena.zeroed(rows, cols);
        self.nodes[a.0].value.matmul_into(&self.nodes[b.0].value, &mut v);
        let rg = self.rg(a) || self.rg(b);
        self.push(v, Op::Matmul(a, b), rg)
    }

    /// Transpose.
    pub fn transpose(&mut self, a: NodeId) -> NodeId {
        let _t = trace::span("graph.fwd.transpose");
        let (rows, cols) = self.nodes[a.0].value.shape();
        let mut v = self.arena.scratch(cols, rows);
        self.nodes[a.0].value.transpose_into(&mut v);
        let rg = self.rg(a);
        self.push(v, Op::Transpose(a), rg)
    }

    /// Elementwise logistic sigmoid.
    pub fn sigmoid(&mut self, a: NodeId) -> NodeId {
        let _t = trace::span("graph.fwd.sigmoid");
        let v = self.map_node(a, |x| 1.0 / (1.0 + (-x).exp()));
        let rg = self.rg(a);
        self.push(v, Op::Sigmoid(a), rg)
    }

    /// Elementwise tanh.
    pub fn tanh(&mut self, a: NodeId) -> NodeId {
        let _t = trace::span("graph.fwd.tanh");
        let v = self.map_node(a, f32::tanh);
        let rg = self.rg(a);
        self.push(v, Op::Tanh(a), rg)
    }

    /// Elementwise ReLU.
    pub fn relu(&mut self, a: NodeId) -> NodeId {
        let _t = trace::span("graph.fwd.relu");
        let v = self.map_node(a, |x| x.max(0.0));
        let rg = self.rg(a);
        self.push(v, Op::Relu(a), rg)
    }

    /// Elementwise exponential.
    pub fn exp(&mut self, a: NodeId) -> NodeId {
        let _t = trace::span("graph.fwd.exp");
        let v = self.map_node(a, f32::exp);
        let rg = self.rg(a);
        self.push(v, Op::Exp(a), rg)
    }

    /// Elementwise natural log (inputs must be positive).
    pub fn ln(&mut self, a: NodeId) -> NodeId {
        let _t = trace::span("graph.fwd.ln");
        let v = self.map_node(a, f32::ln);
        let rg = self.rg(a);
        self.push(v, Op::Ln(a), rg)
    }

    /// Adds a constant scalar to every element.
    pub fn add_scalar(&mut self, a: NodeId, s: f32) -> NodeId {
        let _t = trace::span("graph.fwd.add_scalar");
        let v = self.map_node(a, |x| x + s);
        let rg = self.rg(a);
        self.push(v, Op::AddScalar(a), rg)
    }

    /// Row-wise softmax.
    ///
    /// A fully-masked row (every entry `-inf`) yields the uniform
    /// distribution `1/V` with zero gradient, instead of NaN-poisoning
    /// the row; see [`Graph::log_softmax_rows`] for the rationale.
    pub fn softmax_rows(&mut self, a: NodeId) -> NodeId {
        let _t = trace::span("graph.fwd.softmax_rows");
        let (rows, cols) = self.nodes[a.0].value.shape();
        let mut v = self.arena.scratch(rows, cols);
        softmax_rows_into(&self.nodes[a.0].value, &mut v);
        let rg = self.rg(a);
        self.push(v, Op::SoftmaxRows(a), rg)
    }

    /// Row-wise log-softmax (numerically stable).
    ///
    /// A fully-masked row (every entry `-inf`, as attention masking
    /// produces for an empty source) is pinned to the uniform log-prob
    /// `-ln V` rather than NaN: the naive `e - max` rewrite turns
    /// `-inf - -inf` into NaN, which then poisons every downstream value
    /// *and* every upstream gradient. The pinned row is a constant, so
    /// its backward contribution is zero.
    pub fn log_softmax_rows(&mut self, a: NodeId) -> NodeId {
        let _t = trace::span("graph.fwd.log_softmax_rows");
        let (rows, cols) = self.nodes[a.0].value.shape();
        let mut v = self.arena.scratch(rows, cols);
        for r in 0..rows {
            let src = self.nodes[a.0].value.row(r);
            let out = v.row_mut(r);
            let max = src.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            if max == f32::NEG_INFINITY {
                out.fill(-(cols as f32).ln());
                continue;
            }
            let lse = src.iter().map(|&e| (e - max).exp()).sum::<f32>().ln() + max;
            for (o, &e) in out.iter_mut().zip(src) {
                *o = e - lse;
            }
        }
        let rg = self.rg(a);
        self.push(v, Op::LogSoftmaxRows(a), rg)
    }

    /// Fused GRU gate: `act((x @ wx + h @ wh) + b)` as one tape node.
    ///
    /// Bitwise-identical (forward and backward) to the unfused
    /// composition `act(add(add(matmul(x, wx), matmul(h, wh)), b))` for
    /// single-row activations: the two matmuls run through the same
    /// kernels into separate buffers, the sum keeps the
    /// `(x@wx + h@wh) + b` association, and the backward pass accumulates
    /// into `b`, then `h`/`wh`, then `x`/`wx` — the reverse-tape order of
    /// the composition. `b` must be `[1, d]`; with multi-row activations
    /// it broadcasts row-wise and its gradient is the column sum.
    pub fn fused_gate(
        &mut self,
        x: NodeId,
        wx: NodeId,
        h: NodeId,
        wh: NodeId,
        b: NodeId,
        act: GateAct,
    ) -> NodeId {
        let _t = trace::span("graph.fwd.fused_gate");
        let rows = self.nodes[x.0].value.rows();
        let cols = self.nodes[wx.0].value.cols();
        assert_eq!(self.nodes[h.0].value.rows(), rows, "fused_gate row mismatch");
        assert_eq!(self.nodes[wh.0].value.cols(), cols, "fused_gate width mismatch");
        assert_eq!(self.nodes[b.0].value.shape(), (1, cols), "fused_gate bias must be [1, d]");
        let mut m1 = self.arena.zeroed(rows, cols);
        self.nodes[x.0].value.matmul_into(&self.nodes[wx.0].value, &mut m1);
        let mut m2 = self.arena.zeroed(rows, cols);
        self.nodes[h.0].value.matmul_into(&self.nodes[wh.0].value, &mut m2);
        let mut v = self.arena.scratch(rows, cols);
        for r in 0..rows {
            let bias = self.nodes[b.0].value.row(0);
            for (((o, &a1), &a2), &bj) in
                v.row_mut(r).iter_mut().zip(m1.row(r)).zip(m2.row(r)).zip(bias)
            {
                let lin = (a1 + a2) + bj;
                *o = match act {
                    GateAct::Sigmoid => 1.0 / (1.0 + (-lin).exp()),
                    GateAct::Tanh => lin.tanh(),
                };
            }
        }
        self.arena.give(m1);
        self.arena.give(m2);
        let rg = self.rg(x) || self.rg(wx) || self.rg(h) || self.rg(wh) || self.rg(b);
        self.push(v, Op::FusedGate { x, wx, h, wh, b, act }, rg)
    }

    /// Fused GRU state blend: `(1 - z) * n + z * h_prev` per cell, as one
    /// tape node.
    ///
    /// Bitwise-identical (forward and backward) to the unfused
    /// composition `add(mul(sub(ones, z), n), mul(z, h_prev))`: the
    /// forward expression keeps the same association, and the backward
    /// pass lands the same per-slot accumulation order — `z` receives
    /// `g ⊙ h_prev` then `-(g ⊙ n)`, `h_prev` receives `g ⊙ z`, and `n`
    /// receives `g ⊙ (1 - z)`.
    pub fn fused_gru_combine(&mut self, z: NodeId, n: NodeId, h_prev: NodeId) -> NodeId {
        let _t = trace::span("graph.fwd.fused_gru_combine");
        let (rows, cols) = self.nodes[z.0].value.shape();
        assert_eq!(self.nodes[n.0].value.shape(), (rows, cols), "fused_gru_combine shape");
        assert_eq!(self.nodes[h_prev.0].value.shape(), (rows, cols), "fused_gru_combine shape");
        let mut v = self.arena.scratch(rows, cols);
        {
            let zv = self.nodes[z.0].value.data();
            let nv = self.nodes[n.0].value.data();
            let hv = self.nodes[h_prev.0].value.data();
            for (((o, &zi), &ni), &hi) in v.data_mut().iter_mut().zip(zv).zip(nv).zip(hv) {
                *o = ((1.0 - zi) * ni) + (zi * hi);
            }
        }
        let rg = self.rg(z) || self.rg(n) || self.rg(h_prev);
        self.push(v, Op::FusedGruCombine { z, n, h_prev }, rg)
    }

    /// Horizontal concatenation.
    pub fn hcat(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let _t = trace::span("graph.fwd.hcat");
        let (rows, ac) = self.nodes[a.0].value.shape();
        let bc = self.nodes[b.0].value.cols();
        assert_eq!(rows, self.nodes[b.0].value.rows(), "hcat row mismatch");
        let mut data = self.arena.empty(rows * (ac + bc));
        for r in 0..rows {
            data.extend_from_slice(self.nodes[a.0].value.row(r));
            data.extend_from_slice(self.nodes[b.0].value.row(r));
        }
        let v = Tensor::from_vec(rows, ac + bc, data);
        let rg = self.rg(a) || self.rg(b);
        self.push(v, Op::HCat(a, b), rg)
    }

    /// Vertical concatenation.
    pub fn vcat(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let _t = trace::span("graph.fwd.vcat");
        let (ar, cols) = self.nodes[a.0].value.shape();
        let br = self.nodes[b.0].value.rows();
        assert_eq!(cols, self.nodes[b.0].value.cols(), "vcat column mismatch");
        let mut data = self.arena.empty((ar + br) * cols);
        data.extend_from_slice(self.nodes[a.0].value.data());
        data.extend_from_slice(self.nodes[b.0].value.data());
        let v = Tensor::from_vec(ar + br, cols, data);
        let rg = self.rg(a) || self.rg(b);
        self.push(v, Op::VCat(a, b), rg)
    }

    /// Rows `[from, to)` of the source node.
    pub fn row_slice(&mut self, a: NodeId, from: usize, to: usize) -> NodeId {
        let _t = trace::span("graph.fwd.row_slice");
        let (rows, cols) = self.nodes[a.0].value.shape();
        assert!(from <= to && to <= rows, "row_slice out of range");
        let mut data = self.arena.empty((to - from) * cols);
        for r in from..to {
            data.extend_from_slice(self.nodes[a.0].value.row(r));
        }
        let v = Tensor::from_vec(to - from, cols, data);
        let rg = self.rg(a);
        self.push(v, Op::RowSlice(a, from, to), rg)
    }

    /// Single row `r` as a `[1, d]` node.
    pub fn row(&mut self, a: NodeId, r: usize) -> NodeId {
        self.row_slice(a, r, r + 1)
    }

    /// Gathers rows by index (embedding lookup); indices may repeat.
    pub fn gather_rows(&mut self, a: NodeId, indices: Vec<usize>) -> NodeId {
        let _t = trace::span("graph.fwd.gather_rows");
        let (rows, cols) = self.nodes[a.0].value.shape();
        let mut data = self.arena.empty(indices.len() * cols);
        for &i in &indices {
            assert!(i < rows, "gather index {i} out of {rows} rows");
            data.extend_from_slice(self.nodes[a.0].value.row(i));
        }
        let v = Tensor::from_vec(indices.len(), cols, data);
        let rg = self.rg(a);
        self.push(v, Op::GatherRows(a, indices), rg)
    }

    /// Repeats a `[1, d]` row `n` times into `[n, d]`.
    pub fn repeat_rows(&mut self, a: NodeId, n: usize) -> NodeId {
        let _t = trace::span("graph.fwd.repeat_rows");
        let cols = self.nodes[a.0].value.cols();
        assert_eq!(self.nodes[a.0].value.rows(), 1, "repeat_rows source must be [1, d]");
        let mut data = self.arena.empty(n * cols);
        for _ in 0..n {
            data.extend_from_slice(self.nodes[a.0].value.row(0));
        }
        let v = Tensor::from_vec(n, cols, data);
        let rg = self.rg(a);
        self.push(v, Op::RepeatRows(a, n), rg)
    }

    /// Sum of all elements as `[1, 1]`.
    pub fn sum_all(&mut self, a: NodeId) -> NodeId {
        let _t = trace::span("graph.fwd.sum_all");
        let v = Tensor::from_vec(1, 1, vec![self.value(a).sum()]);
        let rg = self.rg(a);
        self.push(v, Op::SumAll(a), rg)
    }

    /// Column-wise mean over rows: `[n, d] -> [1, d]`.
    pub fn mean_rows(&mut self, a: NodeId) -> NodeId {
        let _t = trace::span("graph.fwd.mean_rows");
        let (rows, cols) = self.nodes[a.0].value.shape();
        let n = rows.max(1) as f32;
        let mut out = self.arena.zeroed(1, cols);
        for r in 0..rows {
            for (o, &x) in out.row_mut(0).iter_mut().zip(self.nodes[a.0].value.row(r)) {
                *o += x;
            }
        }
        for o in out.row_mut(0) {
            *o /= n;
        }
        let rg = self.rg(a);
        self.push(out, Op::MeanRows(a), rg)
    }

    /// Column-wise sum over rows: `[n, d] -> [1, d]`.
    pub fn sum_rows(&mut self, a: NodeId) -> NodeId {
        let _t = trace::span("graph.fwd.sum_rows");
        let (rows, cols) = self.nodes[a.0].value.shape();
        let mut out = self.arena.zeroed(1, cols);
        for r in 0..rows {
            for (o, &x) in out.row_mut(0).iter_mut().zip(self.nodes[a.0].value.row(r)) {
                *o += x;
            }
        }
        let rg = self.rg(a);
        self.push(out, Op::SumRows(a), rg)
    }

    /// Sliding-window flatten used by the char-CNN: `[n, d] -> [n-k+1, k*d]`.
    ///
    /// # Panics
    /// Panics if `n < k`; callers pad with zero rows first (§IV-B pads so
    /// that at least one slice is available).
    pub fn unfold(&mut self, a: NodeId, k: usize) -> NodeId {
        let _t = trace::span("graph.fwd.unfold");
        let (rows, cols) = self.nodes[a.0].value.shape();
        assert!(k >= 1 && rows >= k, "unfold needs at least k={k} rows, got {rows}");
        let out_rows = rows - k + 1;
        let mut data = self.arena.empty(out_rows * k * cols);
        for r in 0..out_rows {
            for w in 0..k {
                data.extend_from_slice(self.nodes[a.0].value.row(r + w));
            }
        }
        let v = Tensor::from_vec(out_rows, k * cols, data);
        let rg = self.rg(a);
        self.push(v, Op::Unfold(a, k), rg)
    }

    /// Mean negative log-likelihood: input must be row-wise log-probabilities
    /// `[n, V]`; `targets[i]` selects the gold class of row `i`.
    pub fn pick_nll(&mut self, logp: NodeId, targets: Vec<usize>) -> NodeId {
        let _t = trace::span("graph.fwd.pick_nll");
        let src = self.value(logp);
        assert_eq!(src.rows(), targets.len(), "pick_nll target count mismatch");
        let mut loss = 0.0;
        for (r, &t) in targets.iter().enumerate() {
            assert!(t < src.cols(), "pick_nll target {t} out of {} classes", src.cols());
            loss -= src.get(r, t);
        }
        loss /= targets.len().max(1) as f32;
        let rg = self.rg(logp);
        self.push(Tensor::from_vec(1, 1, vec![loss]), Op::PickNll(logp, targets), rg)
    }

    /// Mean binary cross-entropy with logits against fixed 0/1 targets
    /// (numerically stable formulation).
    pub fn bce_with_logits(&mut self, logits: NodeId, targets: Tensor) -> NodeId {
        let _t = trace::span("graph.fwd.bce_with_logits");
        let x = self.value(logits);
        assert_eq!(x.shape(), targets.shape(), "bce shape mismatch");
        let n = x.len().max(1) as f32;
        let mut loss = 0.0;
        for (&xi, &ti) in x.data().iter().zip(targets.data()) {
            loss += xi.max(0.0) - xi * ti + (1.0 + (-xi.abs()).exp()).ln();
        }
        loss /= n;
        let rg = self.rg(logits);
        self.push(Tensor::from_vec(1, 1, vec![loss]), Op::BceWithLogits(logits, targets), rg)
    }

    /// Runs reverse-mode differentiation from a scalar `[1, 1]` loss node.
    ///
    /// After this call, [`Graph::grad`] returns gradients for every
    /// gradient-tracked node and [`Graph::param_grads`] collects them per
    /// parameter.
    pub fn backward(&mut self, loss: NodeId) {
        let _t = trace::span("graph.backward");
        trace::record("graph.nodes_per_backward", self.nodes.len() as f64);
        trace::record("graph.param_bindings_per_backward", self.param_bindings.len() as f64);
        assert_eq!(self.value(loss).shape(), (1, 1), "backward requires a scalar loss");
        for slot in self.grads.drain(..) {
            if let Some(t) = slot {
                self.arena.give(t);
            }
        }
        self.grads.resize_with(self.nodes.len(), || None);
        self.grads[loss.0] = Some(Tensor::from_vec(1, 1, vec![1.0]));
        // Split the borrow so backprop can match on `&nodes[i].op` without
        // cloning the op descriptor while mutating grads and the arena.
        let Graph { nodes, grads, arena, .. } = self;
        for i in (0..=loss.0).rev() {
            if grads[i].is_none() || !nodes[i].requires_grad {
                continue;
            }
            let g = grads[i].take().expect("checked above");
            backprop_node(nodes, grads, arena, i, &g);
            grads[i] = Some(g);
        }
    }

    /// Collects accumulated gradients per bound parameter, merging multiple
    /// bindings of the same parameter. Output order is the order in which
    /// each parameter was *first* bound (stable across calls), and the
    /// merge is ParamId-indexed so a graph with `n` bindings costs O(n),
    /// not O(n²).
    pub fn param_grads(&self) -> Vec<(ParamId, Tensor)> {
        use std::collections::hash_map::Entry;
        let mut merged: Vec<(ParamId, Tensor)> = Vec::with_capacity(self.param_bindings.len());
        let mut slot: std::collections::HashMap<ParamId, usize> =
            std::collections::HashMap::with_capacity(self.param_bindings.len());
        for &(node, pid) in &self.param_bindings {
            let Some(g) = self.grad(node) else { continue };
            match slot.entry(pid) {
                Entry::Occupied(e) => merged[*e.get()].1.add_scaled(g, 1.0),
                Entry::Vacant(e) => {
                    e.insert(merged.len());
                    merged.push((pid, g.clone()));
                }
            }
        }
        merged
    }
}

/// Accumulates an owned `delta` into a node's gradient slot, recycling the
/// buffer when the slot is already occupied.
fn accum_owned(
    nodes: &[Node],
    grads: &mut [Option<Tensor>],
    arena: &mut Arena,
    id: NodeId,
    delta: Tensor,
) {
    if !nodes[id.0].requires_grad {
        arena.give(delta);
        return;
    }
    match &mut grads[id.0] {
        Some(g) => {
            g.add_scaled(&delta, 1.0);
            arena.give(delta);
        }
        slot @ None => *slot = Some(delta),
    }
}

/// Accumulates a borrowed `delta` into a node's gradient slot, copying into
/// an arena buffer only when the slot is empty.
fn accum_ref(
    nodes: &[Node],
    grads: &mut [Option<Tensor>],
    arena: &mut Arena,
    id: NodeId,
    delta: &Tensor,
) {
    if !nodes[id.0].requires_grad {
        return;
    }
    match &mut grads[id.0] {
        Some(g) => g.add_scaled(delta, 1.0),
        slot @ None => {
            let mut copy = arena.scratch(delta.rows(), delta.cols());
            copy.data_mut().copy_from_slice(delta.data());
            *slot = Some(copy);
        }
    }
}

/// `out = a @ b^T` via an arena-recycled transpose buffer (same kernels,
/// hence bitwise-identical to `a.matmul(&b.transpose())`).
fn matmul_bt(arena: &mut Arena, a: &Tensor, b: &Tensor) -> Tensor {
    let mut bt = arena.scratch(b.cols(), b.rows());
    b.transpose_into(&mut bt);
    let mut out = arena.zeroed(a.rows(), bt.cols());
    a.matmul_into(&bt, &mut out);
    arena.give(bt);
    out
}

/// `out = a^T @ b` via an arena-recycled transpose buffer.
fn matmul_at(arena: &mut Arena, a: &Tensor, b: &Tensor) -> Tensor {
    let mut at = arena.scratch(a.cols(), a.rows());
    a.transpose_into(&mut at);
    let mut out = arena.zeroed(at.rows(), b.cols());
    at.matmul_into(b, &mut out);
    arena.give(at);
    out
}

fn backprop_node(
    nodes: &[Node],
    grads: &mut [Option<Tensor>],
    arena: &mut Arena,
    i: usize,
    g: &Tensor,
) {
    let op = &nodes[i].op;
    let _t = trace::span(bwd_span_name(op));
    match op {
        Op::Leaf | Op::Input | Op::Param => {}
        &Op::Add(a, b) => {
            accum_ref(nodes, grads, arena, a, g);
            accum_ref(nodes, grads, arena, b, g);
        }
        &Op::Sub(a, b) => {
            accum_ref(nodes, grads, arena, a, g);
            let mut neg = arena.scratch(g.rows(), g.cols());
            g.map_into(|x| -x, &mut neg);
            accum_owned(nodes, grads, arena, b, neg);
        }
        &Op::Mul(a, b) => {
            let mut da = arena.scratch(g.rows(), g.cols());
            g.zip_into(&nodes[b.0].value, |gi, bi| gi * bi, &mut da);
            let mut db = arena.scratch(g.rows(), g.cols());
            g.zip_into(&nodes[a.0].value, |gi, ai| gi * ai, &mut db);
            accum_owned(nodes, grads, arena, a, da);
            accum_owned(nodes, grads, arena, b, db);
        }
        &Op::Scale(a, s) => {
            let mut da = arena.scratch(g.rows(), g.cols());
            g.map_into(|x| x * s, &mut da);
            accum_owned(nodes, grads, arena, a, da);
        }
        &Op::AddRow(a, row) => {
            accum_ref(nodes, grads, arena, a, g);
            let mut dr = arena.zeroed(1, g.cols());
            for r in 0..g.rows() {
                for (o, &x) in dr.row_mut(0).iter_mut().zip(g.row(r)) {
                    *o += x;
                }
            }
            accum_owned(nodes, grads, arena, row, dr);
        }
        &Op::MulRow(a, row) => {
            let mut da = arena.scratch(g.rows(), g.cols());
            for r in 0..g.rows() {
                let rv = nodes[row.0].value.row(0);
                for ((o, &gi), &m) in da.row_mut(r).iter_mut().zip(g.row(r)).zip(rv) {
                    *o = gi * m;
                }
            }
            accum_owned(nodes, grads, arena, a, da);
            let mut dr = arena.zeroed(1, g.cols());
            for r in 0..g.rows() {
                let av = nodes[a.0].value.row(r);
                for ((o, &gi), &x) in dr.row_mut(0).iter_mut().zip(g.row(r)).zip(av) {
                    *o += gi * x;
                }
            }
            accum_owned(nodes, grads, arena, row, dr);
        }
        &Op::Matmul(a, b) => {
            let da = matmul_bt(arena, g, &nodes[b.0].value);
            let db = matmul_at(arena, &nodes[a.0].value, g);
            accum_owned(nodes, grads, arena, a, da);
            accum_owned(nodes, grads, arena, b, db);
        }
        &Op::Transpose(a) => {
            let mut da = arena.scratch(g.cols(), g.rows());
            g.transpose_into(&mut da);
            accum_owned(nodes, grads, arena, a, da);
        }
        &Op::Sigmoid(a) => {
            let y = &nodes[i].value;
            let mut da = arena.scratch(g.rows(), g.cols());
            g.zip_into(y, |gi, yi| gi * yi * (1.0 - yi), &mut da);
            accum_owned(nodes, grads, arena, a, da);
        }
        &Op::Tanh(a) => {
            let y = &nodes[i].value;
            let mut da = arena.scratch(g.rows(), g.cols());
            g.zip_into(y, |gi, yi| gi * (1.0 - yi * yi), &mut da);
            accum_owned(nodes, grads, arena, a, da);
        }
        &Op::Relu(a) => {
            let y = &nodes[i].value;
            let mut da = arena.scratch(g.rows(), g.cols());
            g.zip_into(y, |gi, yi| if yi > 0.0 { gi } else { 0.0 }, &mut da);
            accum_owned(nodes, grads, arena, a, da);
        }
        &Op::Exp(a) => {
            let y = &nodes[i].value;
            let mut da = arena.scratch(g.rows(), g.cols());
            g.zip_into(y, |gi, yi| gi * yi, &mut da);
            accum_owned(nodes, grads, arena, a, da);
        }
        &Op::Ln(a) => {
            let mut da = arena.scratch(g.rows(), g.cols());
            g.zip_into(&nodes[a.0].value, |gi, xi| gi / xi, &mut da);
            accum_owned(nodes, grads, arena, a, da);
        }
        &Op::AddScalar(a) => {
            accum_ref(nodes, grads, arena, a, g);
        }
        &Op::SoftmaxRows(a) => {
            let y = &nodes[i].value;
            let mut da = arena.scratch(y.rows(), y.cols());
            for r in 0..y.rows() {
                // A fully-masked input row was pinned to the uniform
                // constant in forward; its gradient is zero.
                if row_fully_masked(&nodes[a.0].value, r) {
                    da.row_mut(r).fill(0.0);
                    continue;
                }
                let dot: f32 = g.row(r).iter().zip(y.row(r)).map(|(&gi, &yi)| gi * yi).sum();
                for c in 0..y.cols() {
                    da.set(r, c, y.get(r, c) * (g.get(r, c) - dot));
                }
            }
            accum_owned(nodes, grads, arena, a, da);
        }
        &Op::LogSoftmaxRows(a) => {
            let logp = &nodes[i].value;
            let mut da = arena.scratch(logp.rows(), logp.cols());
            for r in 0..logp.rows() {
                // Pinned uniform rows (fully-masked input) are constants.
                if row_fully_masked(&nodes[a.0].value, r) {
                    da.row_mut(r).fill(0.0);
                    continue;
                }
                let gsum: f32 = g.row(r).iter().sum();
                for c in 0..logp.cols() {
                    da.set(r, c, g.get(r, c) - logp.get(r, c).exp() * gsum);
                }
            }
            accum_owned(nodes, grads, arena, a, da);
        }
        &Op::HCat(a, b) => {
            let ac = nodes[a.0].value.cols();
            let rows = g.rows();
            let mut da = arena.scratch(rows, ac);
            let mut db = arena.scratch(rows, g.cols() - ac);
            for r in 0..rows {
                da.row_mut(r).copy_from_slice(&g.row(r)[..ac]);
                db.row_mut(r).copy_from_slice(&g.row(r)[ac..]);
            }
            accum_owned(nodes, grads, arena, a, da);
            accum_owned(nodes, grads, arena, b, db);
        }
        &Op::VCat(a, b) => {
            let ar = nodes[a.0].value.rows();
            let cols = g.cols();
            let mut da = arena.scratch(ar, cols);
            let mut db = arena.scratch(g.rows() - ar, cols);
            for r in 0..ar {
                da.row_mut(r).copy_from_slice(g.row(r));
            }
            for r in ar..g.rows() {
                db.row_mut(r - ar).copy_from_slice(g.row(r));
            }
            accum_owned(nodes, grads, arena, a, da);
            accum_owned(nodes, grads, arena, b, db);
        }
        &Op::RowSlice(a, from, _to) => {
            let (rows, cols) = nodes[a.0].value.shape();
            let mut da = arena.zeroed(rows, cols);
            for r in 0..g.rows() {
                da.row_mut(from + r).copy_from_slice(g.row(r));
            }
            accum_owned(nodes, grads, arena, a, da);
        }
        Op::GatherRows(a, indices) => {
            let a = *a;
            let (rows, cols) = nodes[a.0].value.shape();
            let mut da = arena.zeroed(rows, cols);
            for (r, &idx) in indices.iter().enumerate() {
                for (o, &x) in da.row_mut(idx).iter_mut().zip(g.row(r)) {
                    *o += x;
                }
            }
            accum_owned(nodes, grads, arena, a, da);
        }
        &Op::RepeatRows(a, _n) => {
            let mut da = arena.zeroed(1, g.cols());
            for r in 0..g.rows() {
                for (o, &x) in da.row_mut(0).iter_mut().zip(g.row(r)) {
                    *o += x;
                }
            }
            accum_owned(nodes, grads, arena, a, da);
        }
        &Op::SumAll(a) => {
            let (rows, cols) = nodes[a.0].value.shape();
            let mut da = arena.scratch(rows, cols);
            da.data_mut().fill(g.scalar());
            accum_owned(nodes, grads, arena, a, da);
        }
        &Op::MeanRows(a) => {
            let (rows, cols) = nodes[a.0].value.shape();
            let n = rows.max(1) as f32;
            let mut da = arena.scratch(rows, cols);
            for r in 0..rows {
                for (o, &x) in da.row_mut(r).iter_mut().zip(g.row(0)) {
                    *o = x / n;
                }
            }
            accum_owned(nodes, grads, arena, a, da);
        }
        &Op::SumRows(a) => {
            let (rows, cols) = nodes[a.0].value.shape();
            let mut da = arena.scratch(rows, cols);
            for r in 0..rows {
                da.row_mut(r).copy_from_slice(g.row(0));
            }
            accum_owned(nodes, grads, arena, a, da);
        }
        &Op::Unfold(a, k) => {
            let (rows, d) = nodes[a.0].value.shape();
            let mut da = arena.zeroed(rows, d);
            for r in 0..g.rows() {
                for w in 0..k {
                    for c in 0..d {
                        let v = g.get(r, w * d + c);
                        da.set(r + w, c, da.get(r + w, c) + v);
                    }
                }
            }
            accum_owned(nodes, grads, arena, a, da);
        }
        Op::PickNll(a, targets) => {
            let a = *a;
            let (rows, cols) = nodes[a.0].value.shape();
            let n = targets.len().max(1) as f32;
            let scale = g.scalar() / n;
            let mut da = arena.zeroed(rows, cols);
            for (r, &t) in targets.iter().enumerate() {
                da.set(r, t, -scale);
            }
            accum_owned(nodes, grads, arena, a, da);
        }
        Op::BceWithLogits(a, targets) => {
            let a = *a;
            let x = &nodes[a.0].value;
            let n = x.len().max(1) as f32;
            let scale = g.scalar() / n;
            let mut da = arena.scratch(x.rows(), x.cols());
            x.zip_into(
                targets,
                |xi, ti| {
                    let s = 1.0 / (1.0 + (-xi).exp());
                    scale * (s - ti)
                },
                &mut da,
            );
            accum_owned(nodes, grads, arena, a, da);
        }
        &Op::FusedGate { x, wx, h, wh, b, act } => {
            let y = &nodes[i].value;
            // dlin = g ⊙ act'(y), the gradient at the pre-activation.
            let mut dlin = arena.scratch(y.rows(), y.cols());
            match act {
                GateAct::Sigmoid => g.zip_into(y, |gi, yi| gi * yi * (1.0 - yi), &mut dlin),
                GateAct::Tanh => g.zip_into(y, |gi, yi| gi * (1.0 - yi * yi), &mut dlin),
            }
            // Reverse-tape order of the unfused composition: bias first,
            // then the h-branch matmul, then the x-branch matmul. The bias
            // gradient copies row 0 and accumulates the rest, so at one
            // row it is bit-for-bit the plain `add` gradient.
            let mut db = arena.scratch(1, dlin.cols());
            db.row_mut(0).copy_from_slice(dlin.row(0));
            for r in 1..dlin.rows() {
                for (o, &v) in db.row_mut(0).iter_mut().zip(dlin.row(r)) {
                    *o += v;
                }
            }
            accum_owned(nodes, grads, arena, b, db);
            let dh = matmul_bt(arena, &dlin, &nodes[wh.0].value);
            let dwh = matmul_at(arena, &nodes[h.0].value, &dlin);
            accum_owned(nodes, grads, arena, h, dh);
            accum_owned(nodes, grads, arena, wh, dwh);
            let dx = matmul_bt(arena, &dlin, &nodes[wx.0].value);
            let dwx = matmul_at(arena, &nodes[x.0].value, &dlin);
            accum_owned(nodes, grads, arena, x, dx);
            accum_owned(nodes, grads, arena, wx, dwx);
            arena.give(dlin);
        }
        &Op::FusedGruCombine { z, n, h_prev } => {
            // Same per-slot accumulation order as the unfused blend:
            // z ← g⊙h_prev, h_prev ← g⊙z (from the z*h_prev product),
            // n ← g⊙(1-z) (from (1-z)*n), then z ← -(g⊙n) (through the
            // 1-z subtraction).
            let mut dz = arena.scratch(g.rows(), g.cols());
            g.zip_into(&nodes[h_prev.0].value, |gi, hi| gi * hi, &mut dz);
            let mut dh = arena.scratch(g.rows(), g.cols());
            g.zip_into(&nodes[z.0].value, |gi, zi| gi * zi, &mut dh);
            accum_owned(nodes, grads, arena, z, dz);
            accum_owned(nodes, grads, arena, h_prev, dh);
            let mut dn = arena.scratch(g.rows(), g.cols());
            g.zip_into(&nodes[z.0].value, |gi, zi| gi * (1.0 - zi), &mut dn);
            accum_owned(nodes, grads, arena, n, dn);
            let mut dz2 = arena.scratch(g.rows(), g.cols());
            g.zip_into(&nodes[n.0].value, |gi, ni| -(gi * ni), &mut dz2);
            accum_owned(nodes, grads, arena, z, dz2);
        }
    }
}

/// Whether row `r` of `x` is fully masked (every entry `-inf`), i.e. its
/// softmax/log-softmax output was pinned to the uniform constant.
fn row_fully_masked(x: &Tensor, r: usize) -> bool {
    x.row(r).iter().cloned().fold(f32::NEG_INFINITY, f32::max) == f32::NEG_INFINITY
}

/// Backward-pass span name per op kind, for `Op`-level profiling.
fn bwd_span_name(op: &Op) -> &'static str {
    match op {
        Op::Leaf => "graph.bwd.leaf",
        Op::Input => "graph.bwd.input",
        Op::Param => "graph.bwd.param",
        Op::Add(..) => "graph.bwd.add",
        Op::Sub(..) => "graph.bwd.sub",
        Op::Mul(..) => "graph.bwd.mul",
        Op::Scale(..) => "graph.bwd.scale",
        Op::AddRow(..) => "graph.bwd.add_row",
        Op::MulRow(..) => "graph.bwd.mul_row",
        Op::Matmul(..) => "graph.bwd.matmul",
        Op::Transpose(..) => "graph.bwd.transpose",
        Op::Sigmoid(..) => "graph.bwd.sigmoid",
        Op::Tanh(..) => "graph.bwd.tanh",
        Op::Relu(..) => "graph.bwd.relu",
        Op::SoftmaxRows(..) => "graph.bwd.softmax_rows",
        Op::LogSoftmaxRows(..) => "graph.bwd.log_softmax_rows",
        Op::HCat(..) => "graph.bwd.hcat",
        Op::VCat(..) => "graph.bwd.vcat",
        Op::RowSlice(..) => "graph.bwd.row_slice",
        Op::GatherRows(..) => "graph.bwd.gather_rows",
        Op::RepeatRows(..) => "graph.bwd.repeat_rows",
        Op::SumAll(..) => "graph.bwd.sum_all",
        Op::MeanRows(..) => "graph.bwd.mean_rows",
        Op::SumRows(..) => "graph.bwd.sum_rows",
        Op::Unfold(..) => "graph.bwd.unfold",
        Op::Exp(..) => "graph.bwd.exp",
        Op::Ln(..) => "graph.bwd.ln",
        Op::AddScalar(..) => "graph.bwd.add_scalar",
        Op::PickNll(..) => "graph.bwd.pick_nll",
        Op::BceWithLogits(..) => "graph.bwd.bce_with_logits",
        Op::FusedGate { .. } => "graph.bwd.fused_gate",
        Op::FusedGruCombine { .. } => "graph.bwd.fused_gru_combine",
    }
}

/// Row-wise softmax of a plain tensor (shared with inference-only paths).
///
/// Same fully-masked-row semantics as [`Graph::softmax_rows`]: an
/// all-`-inf` row yields the uniform distribution `1/V` instead of the
/// `0/0 = NaN` row the naive rewrite produces.
pub fn softmax_rows_value(x: &Tensor) -> Tensor {
    let mut v = Tensor::zeros(x.rows(), x.cols());
    softmax_rows_into(x, &mut v);
    v
}

/// Row-wise softmax into a caller-provided same-shape buffer.
fn softmax_rows_into(x: &Tensor, out: &mut Tensor) {
    for r in 0..x.rows() {
        let src = x.row(r);
        let row = out.row_mut(r);
        let max = src.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        if max == f32::NEG_INFINITY {
            row.fill(1.0 / src.len() as f32);
            continue;
        }
        let mut sum = 0.0;
        for (o, &e) in row.iter_mut().zip(src) {
            *o = (e - max).exp();
            sum += *o;
        }
        for e in row.iter_mut() {
            *e /= sum;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_values_compose() {
        let mut g = Graph::new();
        let a = g.leaf(Tensor::row_vector(&[1.0, 2.0]));
        let b = g.leaf(Tensor::row_vector(&[3.0, 4.0]));
        let s = g.add(a, b);
        assert_eq!(g.value(s).data(), &[4.0, 6.0]);
        let m = g.mul(a, b);
        assert_eq!(g.value(m).data(), &[3.0, 8.0]);
    }

    #[test]
    fn backward_through_add_mul() {
        // loss = sum(a * b) => dL/da = b, dL/db = a
        let mut g = Graph::new();
        let a = g.input(Tensor::row_vector(&[1.0, 2.0]));
        let b = g.input(Tensor::row_vector(&[3.0, 4.0]));
        let m = g.mul(a, b);
        let loss = g.sum_all(m);
        g.backward(loss);
        assert_eq!(g.grad(a).unwrap().data(), &[3.0, 4.0]);
        assert_eq!(g.grad(b).unwrap().data(), &[1.0, 2.0]);
    }

    #[test]
    fn backward_matmul_matches_manual() {
        // loss = sum(A @ B); dA = ones @ B^T, dB = A^T @ ones
        let mut g = Graph::new();
        let a = g.input(Tensor::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]));
        let b = g.input(Tensor::from_vec(2, 2, vec![5.0, 6.0, 7.0, 8.0]));
        let c = g.matmul(a, b);
        let loss = g.sum_all(c);
        g.backward(loss);
        // dA[i][k] = sum_j B[k][j]
        assert_eq!(g.grad(a).unwrap().data(), &[11.0, 15.0, 11.0, 15.0]);
        // dB[k][j] = sum_i A[i][k]
        assert_eq!(g.grad(b).unwrap().data(), &[4.0, 4.0, 6.0, 6.0]);
    }

    #[test]
    fn leaf_has_no_grad() {
        let mut g = Graph::new();
        let a = g.leaf(Tensor::row_vector(&[1.0]));
        let b = g.input(Tensor::row_vector(&[2.0]));
        let m = g.mul(a, b);
        let loss = g.sum_all(m);
        g.backward(loss);
        assert!(g.grad(a).is_none());
        assert!(g.grad(b).is_some());
    }

    #[test]
    fn gather_rows_accumulates_duplicates() {
        let mut g = Graph::new();
        let e = g.input(Tensor::from_vec(3, 2, vec![1.0; 6]));
        let picked = g.gather_rows(e, vec![0, 2, 0]);
        assert_eq!(g.value(picked).rows(), 3);
        let loss = g.sum_all(picked);
        g.backward(loss);
        let grad = g.grad(e).unwrap();
        assert_eq!(grad.row(0), &[2.0, 2.0]); // picked twice
        assert_eq!(grad.row(1), &[0.0, 0.0]);
        assert_eq!(grad.row(2), &[1.0, 1.0]);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let mut g = Graph::new();
        let a = g.leaf(Tensor::from_vec(2, 3, vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0]));
        let s = g.softmax_rows(a);
        for r in 0..2 {
            let sum: f32 = g.value(s).row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn log_softmax_is_log_of_softmax() {
        let mut g = Graph::new();
        let x = Tensor::from_vec(1, 3, vec![0.3, -0.5, 2.0]);
        let a = g.leaf(x.clone());
        let s = g.softmax_rows(a);
        let b = g.leaf(x);
        let l = g.log_softmax_rows(b);
        for c in 0..3 {
            let diff = g.value(s).get(0, c).ln() - g.value(l).get(0, c);
            assert!(diff.abs() < 1e-5);
        }
    }

    #[test]
    fn fully_masked_softmax_rows_are_uniform_not_nan() {
        // Regression: an all-`-inf` row used to produce `e - max = NaN`
        // (log-softmax) or `0/0 = NaN` (softmax) and poison the tape.
        let ninf = f32::NEG_INFINITY;
        let x = Tensor::from_vec(2, 4, vec![ninf, ninf, ninf, ninf, 1.0, 2.0, 3.0, 4.0]);
        let mut g = Graph::new();
        let a = g.leaf(x.clone());
        let s = g.softmax_rows(a);
        assert_eq!(g.value(s).row(0), &[0.25; 4], "masked row pins to uniform");
        assert!((g.value(s).row(1).iter().sum::<f32>() - 1.0).abs() < 1e-6);
        assert!(g.value(s).data().iter().all(|v| v.is_finite()));

        let b = g.leaf(x.clone());
        let l = g.log_softmax_rows(b);
        assert_eq!(g.value(l).row(0), &[-(4f32.ln()); 4], "masked row pins to -ln V");
        assert!(g.value(l).data().iter().all(|v| v.is_finite()));

        // The standalone value-path helper has the same pinned semantics.
        let v = softmax_rows_value(&x);
        assert_eq!(v.row(0), &[0.25; 4]);
    }

    #[test]
    fn fully_masked_softmax_rows_have_zero_gradient() {
        // The pinned uniform row is a constant: backward must not push
        // NaN (or anything) into the masked row of the input.
        let ninf = f32::NEG_INFINITY;
        let x = Tensor::from_vec(2, 3, vec![ninf, ninf, ninf, 0.5, -1.0, 2.0]);
        for log in [false, true] {
            let mut g = Graph::new();
            let a = g.input(x.clone());
            let s = if log { g.log_softmax_rows(a) } else { g.softmax_rows(a) };
            let loss = g.sum_all(s);
            g.backward(loss);
            let grad = g.grad(a).unwrap();
            assert_eq!(grad.row(0), &[0.0; 3], "masked row gradient must be zero (log={log})");
            assert!(grad.data().iter().all(|v| v.is_finite()), "log={log}");
        }
    }

    #[test]
    fn bce_matches_closed_form() {
        // logits = 0 => sigmoid = 0.5 => loss = ln 2 regardless of target
        let mut g = Graph::new();
        let a = g.input(Tensor::row_vector(&[0.0, 0.0]));
        let loss = g.bce_with_logits(a, Tensor::row_vector(&[1.0, 0.0]));
        assert!((g.value(loss).scalar() - std::f32::consts::LN_2).abs() < 1e-6);
        g.backward(loss);
        let grad = g.grad(a).unwrap();
        // d/dx = (sigmoid(x) - t)/n = (0.5 - t)/2
        assert!((grad.data()[0] - (-0.25)).abs() < 1e-6);
        assert!((grad.data()[1] - 0.25).abs() < 1e-6);
    }

    #[test]
    fn pick_nll_selects_targets() {
        let mut g = Graph::new();
        let a = g.input(Tensor::from_vec(2, 2, vec![1.0, 3.0, 2.0, 0.5]));
        let lp = g.log_softmax_rows(a);
        let loss = g.pick_nll(lp, vec![1, 0]);
        // manual: -(logp[0][1] + logp[1][0]) / 2
        let expected = -(g.value(lp).get(0, 1) + g.value(lp).get(1, 0)) / 2.0;
        assert!((g.value(loss).scalar() - expected).abs() < 1e-6);
    }

    #[test]
    fn unfold_shapes_and_backward() {
        let mut g = Graph::new();
        let a = g.input(Tensor::from_vec(4, 2, vec![1.0; 8]));
        let u = g.unfold(a, 3);
        assert_eq!(g.value(u).shape(), (2, 6));
        let loss = g.sum_all(u);
        g.backward(loss);
        let grad = g.grad(a).unwrap();
        // middle rows appear in both windows
        assert_eq!(grad.row(0), &[1.0, 1.0]);
        assert_eq!(grad.row(1), &[2.0, 2.0]);
        assert_eq!(grad.row(2), &[2.0, 2.0]);
        assert_eq!(grad.row(3), &[1.0, 1.0]);
    }

    #[test]
    fn param_grads_merge_multiple_bindings() {
        let mut store = ParamStore::new();
        let pid = store.add("w", Tensor::row_vector(&[2.0]));
        let mut g = Graph::new();
        let p1 = g.param(&store, pid);
        let p2 = g.param(&store, pid);
        let s = g.mul(p1, p2); // w * w
        let loss = g.sum_all(s);
        g.backward(loss);
        let grads = g.param_grads();
        assert_eq!(grads.len(), 1);
        // d(w^2)/dw = 2w = 4
        assert_eq!(grads[0].1.data(), &[4.0]);
    }

    #[test]
    fn param_grads_merge_many_repeated_bindings_in_first_bound_order() {
        // Regression companion to the ParamId-indexed merge: many params,
        // each bound many times, interleaved — the output must keep
        // first-binding order and sum every binding's gradient.
        const PARAMS: usize = 40;
        const REPEATS: usize = 25;
        let mut store = ParamStore::new();
        let pids: Vec<ParamId> = (0..PARAMS)
            .map(|i| store.add(format!("w{i}"), Tensor::row_vector(&[1.0 + i as f32])))
            .collect();
        let mut g = Graph::new();
        let mut acc: Option<NodeId> = None;
        for r in 0..REPEATS {
            for &pid in &pids {
                // Interleave bindings so first-binding order != last-use order.
                let node = g.param(&store, pid);
                let scaled = g.scale(node, (r + 1) as f32);
                let s = g.sum_all(scaled);
                acc = Some(match acc {
                    None => s,
                    Some(a) => g.add(a, s),
                });
            }
        }
        g.backward(acc.unwrap());
        let grads = g.param_grads();
        assert_eq!(grads.len(), PARAMS);
        let expected_order: Vec<ParamId> = pids.clone();
        let got_order: Vec<ParamId> = grads.iter().map(|(id, _)| *id).collect();
        assert_eq!(got_order, expected_order, "first-binding order must be preserved");
        // d/dw of sum_r (r+1) * w = sum of 1..=REPEATS.
        let expected = (REPEATS * (REPEATS + 1) / 2) as f32;
        for (_, grad) in &grads {
            assert_eq!(grad.data(), &[expected]);
        }
    }

    #[test]
    fn repeat_rows_backward_sums() {
        let mut g = Graph::new();
        let a = g.input(Tensor::row_vector(&[1.0, 2.0]));
        let r = g.repeat_rows(a, 3);
        assert_eq!(g.value(r).shape(), (3, 2));
        let loss = g.sum_all(r);
        g.backward(loss);
        assert_eq!(g.grad(a).unwrap().data(), &[3.0, 3.0]);
    }

    #[test]
    fn row_slice_grad_is_zero_padded() {
        let mut g = Graph::new();
        let a = g.input(Tensor::from_vec(3, 1, vec![1.0, 2.0, 3.0]));
        let s = g.row_slice(a, 1, 2);
        let loss = g.sum_all(s);
        g.backward(loss);
        assert_eq!(g.grad(a).unwrap().data(), &[0.0, 1.0, 0.0]);
    }

    /// Runs one forward/backward pass through a mixed-op tape and returns
    /// (loss, input gradient, param gradients).
    fn mixed_tape_pass(g: &mut Graph, store: &ParamStore, pids: &[ParamId]) -> (f32, Tensor, Vec<Tensor>) {
        let x = g.input(Tensor::from_vec(3, 4, (0..12).map(|i| (i as f32) * 0.3 - 1.7).collect()));
        let w = g.param(store, pids[0]);
        let b = g.param(store, pids[1]);
        let mm = g.matmul(x, w);
        let biased = g.add_row(mm, b);
        let act = g.tanh(biased);
        let sm = g.softmax_rows(act);
        let lsm = g.log_softmax_rows(act);
        let gated = g.mul(sm, lsm);
        let pooled = g.mean_rows(gated);
        let loss = g.sum_all(pooled);
        g.backward(loss);
        let grads = g.param_grads();
        (
            g.value(loss).scalar(),
            g.grad(x).unwrap().clone(),
            grads.into_iter().map(|(_, t)| t).collect(),
        )
    }

    #[test]
    fn reset_reuses_tape_with_bitwise_identical_results() {
        // A reused (reset) graph must produce bit-for-bit the same loss,
        // input gradients, and param gradients as a fresh graph, even
        // though every buffer now comes from the recycling arena.
        let mut store = ParamStore::new();
        let pids = vec![
            store.add("w", Tensor::xavier_seeded(4, 5, 11)),
            store.add("b", Tensor::xavier_seeded(1, 5, 12)),
        ];
        let mut fresh = Graph::new();
        let (loss0, gx0, gp0) = mixed_tape_pass(&mut fresh, &store, &pids);

        let mut reused = Graph::new();
        for round in 0..5 {
            reused.reset();
            let (loss, gx, gp) = mixed_tape_pass(&mut reused, &store, &pids);
            assert_eq!(loss.to_bits(), loss0.to_bits(), "round {round} loss");
            assert_eq!(gx, gx0, "round {round} input grad");
            assert_eq!(gp, gp0, "round {round} param grads");
        }
    }

    #[test]
    fn reset_invalidates_tape_but_keeps_graph_usable() {
        let mut g = Graph::new();
        let a = g.input(Tensor::row_vector(&[1.0, 2.0]));
        let s = g.sum_all(a);
        g.backward(s);
        assert!(g.grad(a).is_some());
        g.reset();
        assert!(g.is_empty());
        assert_eq!(g.len(), 0);
        let b = g.input(Tensor::row_vector(&[5.0]));
        let s2 = g.sum_all(b);
        g.backward(s2);
        assert_eq!(g.grad(b).unwrap().data(), &[1.0]);
    }

    /// Unfused reference for [`Graph::fused_gate`]: the exact composition
    /// `GruCell::step` used before fusion.
    fn unfused_gate(
        g: &mut Graph,
        x: NodeId,
        wx: NodeId,
        h: NodeId,
        wh: NodeId,
        b: NodeId,
        act: GateAct,
    ) -> NodeId {
        let xw = g.matmul(x, wx);
        let hw = g.matmul(h, wh);
        let s = g.add(xw, hw);
        let lin = g.add(s, b);
        match act {
            GateAct::Sigmoid => g.sigmoid(lin),
            GateAct::Tanh => g.tanh(lin),
        }
    }

    /// Unfused reference for [`Graph::fused_gru_combine`].
    fn unfused_combine(g: &mut Graph, z: NodeId, n: NodeId, h_prev: NodeId) -> NodeId {
        let (rows, cols) = g.value(z).shape();
        let ones = g.leaf(Tensor::full(rows, cols, 1.0));
        let omz = g.sub(ones, z);
        let a = g.mul(omz, n);
        let b = g.mul(z, h_prev);
        g.add(a, b)
    }

    #[test]
    fn fused_gate_matches_unfused_composition_bitwise() {
        for act in [GateAct::Sigmoid, GateAct::Tanh] {
            let build = |g: &mut Graph, fused: bool| {
                let x = g.input(Tensor::xavier_seeded(1, 6, 21));
                let wx = g.input(Tensor::xavier_seeded(6, 5, 22));
                let h = g.input(Tensor::xavier_seeded(1, 7, 23));
                let wh = g.input(Tensor::xavier_seeded(7, 5, 24));
                let b = g.input(Tensor::xavier_seeded(1, 5, 25));
                let y = if fused {
                    g.fused_gate(x, wx, h, wh, b, act)
                } else {
                    unfused_gate(g, x, wx, h, wh, b, act)
                };
                let loss = g.sum_all(y);
                g.backward(loss);
                (
                    g.value(y).clone(),
                    [x, wx, h, wh, b].map(|n| g.grad(n).unwrap().clone()),
                )
            };
            let mut gf = Graph::new();
            let (yf, gradf) = build(&mut gf, true);
            let mut gu = Graph::new();
            let (yu, gradu) = build(&mut gu, false);
            assert_eq!(yf, yu, "forward value ({act:?})");
            for (i, (a, b)) in gradf.iter().zip(&gradu).enumerate() {
                let bits_equal = a
                    .data()
                    .iter()
                    .zip(b.data())
                    .all(|(p, q)| p.to_bits() == q.to_bits());
                assert!(bits_equal, "grad {i} differs ({act:?})");
            }
        }
    }

    #[test]
    fn fused_gru_combine_matches_unfused_composition_bitwise() {
        let build = |g: &mut Graph, fused: bool| {
            let zl = g.input(Tensor::xavier_seeded(1, 8, 31));
            let z = g.sigmoid(zl);
            let nl = g.input(Tensor::xavier_seeded(1, 8, 32));
            let n = g.tanh(nl);
            let hp = g.input(Tensor::xavier_seeded(1, 8, 33));
            let h = if fused {
                g.fused_gru_combine(z, n, hp)
            } else {
                unfused_combine(g, z, n, hp)
            };
            let loss = g.sum_all(h);
            g.backward(loss);
            (g.value(h).clone(), [zl, nl, hp].map(|m| g.grad(m).unwrap().clone()))
        };
        let mut gf = Graph::new();
        let (hf, gradf) = build(&mut gf, true);
        let mut gu = Graph::new();
        let (hu, gradu) = build(&mut gu, false);
        assert_eq!(hf, hu, "forward value");
        for (i, (a, b)) in gradf.iter().zip(&gradu).enumerate() {
            let bits_equal =
                a.data().iter().zip(b.data()).all(|(p, q)| p.to_bits() == q.to_bits());
            assert!(bits_equal, "grad {i} differs");
        }
    }
}
