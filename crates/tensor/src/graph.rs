//! Define-by-run reverse-mode autograd on a flat tape.
//!
//! A [`Graph`] is an arena of nodes created in topological order; every op
//! method immediately computes its forward value and records enough
//! information to run the backward pass. Calling [`Graph::backward`] on a
//! scalar loss walks the tape in reverse, accumulating gradients into every
//! node that (transitively) depends on a [`Graph::param`] or
//! [`Graph::input`] node.
//!
//! `input` nodes exist specifically for the paper's adversarial text method
//! (§IV-C): the Fast Gradient Method needs `dL/dE(w)` for each *input*
//! embedding row, so word/char embeddings of the question are fed in as
//! gradient-tracked inputs and their gradients read back after `backward`.

use nlidb_trace as trace;

use crate::params::{ParamId, ParamStore};
use crate::tensor::Tensor;

/// Handle to a node in a [`Graph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeId(usize);

impl NodeId {
    /// Raw tape index.
    pub fn index(self) -> usize {
        self.0
    }
}

/// The operation that produced a node, with the data needed for backward.
#[derive(Debug, Clone)]
enum Op {
    /// Constant leaf; gradients are not tracked.
    Leaf,
    /// Gradient-tracked leaf (model input for adversarial analysis).
    Input,
    /// Gradient-tracked leaf bound to a stored parameter (see `param_bindings`).
    Param,
    Add(NodeId, NodeId),
    Sub(NodeId, NodeId),
    Mul(NodeId, NodeId),
    Scale(NodeId, f32),
    /// `[n, d] + [1, d]` row broadcast.
    AddRow(NodeId, NodeId),
    /// `[n, d] * [1, d]` row broadcast.
    MulRow(NodeId, NodeId),
    Matmul(NodeId, NodeId),
    Transpose(NodeId),
    Sigmoid(NodeId),
    Tanh(NodeId),
    Relu(NodeId),
    SoftmaxRows(NodeId),
    LogSoftmaxRows(NodeId),
    HCat(NodeId, NodeId),
    VCat(NodeId, NodeId),
    /// Rows `[a, b)` of the source.
    RowSlice(NodeId, usize, usize),
    /// Row gather (embedding lookup); duplicates accumulate.
    GatherRows(NodeId, Vec<usize>),
    /// `[1, d] -> [n, d]`.
    RepeatRows(NodeId, usize),
    SumAll(NodeId),
    MeanRows(NodeId),
    SumRows(NodeId),
    /// Sliding-window flatten: `[n, d] -> [n-k+1, k*d]`.
    Unfold(NodeId, usize),
    /// Elementwise `exp`.
    Exp(NodeId),
    /// Elementwise natural log.
    Ln(NodeId),
    /// Adds a constant scalar to every element (constant not needed for backward).
    AddScalar(NodeId),
    /// Mean negative log-likelihood over rows of log-probabilities.
    PickNll(NodeId, Vec<usize>),
    /// Mean binary cross-entropy with logits against fixed targets.
    BceWithLogits(NodeId, Tensor),
}

struct Node {
    value: Tensor,
    op: Op,
    requires_grad: bool,
}

/// A single forward/backward tape.
#[derive(Default)]
pub struct Graph {
    nodes: Vec<Node>,
    grads: Vec<Option<Tensor>>,
    param_bindings: Vec<(NodeId, ParamId)>,
}

impl Graph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    fn push(&mut self, value: Tensor, op: Op, requires_grad: bool) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(Node { value, op, requires_grad });
        id
    }

    fn rg(&self, id: NodeId) -> bool {
        self.nodes[id.0].requires_grad
    }

    /// Number of nodes on the tape.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tape is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Forward value of a node.
    pub fn value(&self, id: NodeId) -> &Tensor {
        &self.nodes[id.0].value
    }

    /// Gradient of the last `backward` loss w.r.t. a node, if tracked.
    pub fn grad(&self, id: NodeId) -> Option<&Tensor> {
        self.grads.get(id.0).and_then(Option::as_ref)
    }

    /// Constant leaf (no gradient).
    pub fn leaf(&mut self, value: Tensor) -> NodeId {
        self.push(value, Op::Leaf, false)
    }

    /// Gradient-tracked input leaf (see module docs: FGM input gradients).
    pub fn input(&mut self, value: Tensor) -> NodeId {
        self.push(value, Op::Input, true)
    }

    /// Binds a stored parameter into this graph.
    pub fn param(&mut self, store: &ParamStore, id: ParamId) -> NodeId {
        let node = self.push(store.get(id).clone(), Op::Param, true);
        self.param_bindings.push((node, id));
        node
    }

    /// Elementwise addition.
    pub fn add(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let _t = trace::span("graph.fwd.add");
        let v = self.value(a).zip(self.value(b), |x, y| x + y);
        let rg = self.rg(a) || self.rg(b);
        self.push(v, Op::Add(a, b), rg)
    }

    /// Elementwise subtraction `a - b`.
    pub fn sub(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let _t = trace::span("graph.fwd.sub");
        let v = self.value(a).zip(self.value(b), |x, y| x - y);
        let rg = self.rg(a) || self.rg(b);
        self.push(v, Op::Sub(a, b), rg)
    }

    /// Elementwise (Hadamard) product.
    pub fn mul(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let _t = trace::span("graph.fwd.mul");
        let v = self.value(a).zip(self.value(b), |x, y| x * y);
        let rg = self.rg(a) || self.rg(b);
        self.push(v, Op::Mul(a, b), rg)
    }

    /// Multiplication by a constant scalar.
    pub fn scale(&mut self, a: NodeId, s: f32) -> NodeId {
        let _t = trace::span("graph.fwd.scale");
        let v = self.value(a).map(|x| x * s);
        let rg = self.rg(a);
        self.push(v, Op::Scale(a, s), rg)
    }

    /// Adds a `[1, d]` row vector to every row of a `[n, d]` matrix.
    pub fn add_row(&mut self, a: NodeId, row: NodeId) -> NodeId {
        let _t = trace::span("graph.fwd.add_row");
        let (m, r) = (self.value(a), self.value(row));
        assert_eq!(r.rows(), 1, "add_row rhs must be [1, d]");
        assert_eq!(m.cols(), r.cols(), "add_row width mismatch");
        let mut v = m.clone();
        for i in 0..v.rows() {
            for (o, &b) in v.row_mut(i).iter_mut().zip(r.row(0)) {
                *o += b;
            }
        }
        let rg = self.rg(a) || self.rg(row);
        self.push(v, Op::AddRow(a, row), rg)
    }

    /// Multiplies every row of a `[n, d]` matrix by a `[1, d]` row vector.
    pub fn mul_row(&mut self, a: NodeId, row: NodeId) -> NodeId {
        let _t = trace::span("graph.fwd.mul_row");
        let (m, r) = (self.value(a), self.value(row));
        assert_eq!(r.rows(), 1, "mul_row rhs must be [1, d]");
        assert_eq!(m.cols(), r.cols(), "mul_row width mismatch");
        let mut v = m.clone();
        for i in 0..v.rows() {
            for (o, &b) in v.row_mut(i).iter_mut().zip(r.row(0)) {
                *o *= b;
            }
        }
        let rg = self.rg(a) || self.rg(row);
        self.push(v, Op::MulRow(a, row), rg)
    }

    /// Matrix product.
    pub fn matmul(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let _t = trace::span("graph.fwd.matmul");
        let v = self.value(a).matmul(self.value(b));
        let rg = self.rg(a) || self.rg(b);
        self.push(v, Op::Matmul(a, b), rg)
    }

    /// Transpose.
    pub fn transpose(&mut self, a: NodeId) -> NodeId {
        let _t = trace::span("graph.fwd.transpose");
        let v = self.value(a).transpose();
        let rg = self.rg(a);
        self.push(v, Op::Transpose(a), rg)
    }

    /// Elementwise logistic sigmoid.
    pub fn sigmoid(&mut self, a: NodeId) -> NodeId {
        let _t = trace::span("graph.fwd.sigmoid");
        let v = self.value(a).map(|x| 1.0 / (1.0 + (-x).exp()));
        let rg = self.rg(a);
        self.push(v, Op::Sigmoid(a), rg)
    }

    /// Elementwise tanh.
    pub fn tanh(&mut self, a: NodeId) -> NodeId {
        let _t = trace::span("graph.fwd.tanh");
        let v = self.value(a).map(f32::tanh);
        let rg = self.rg(a);
        self.push(v, Op::Tanh(a), rg)
    }

    /// Elementwise ReLU.
    pub fn relu(&mut self, a: NodeId) -> NodeId {
        let _t = trace::span("graph.fwd.relu");
        let v = self.value(a).map(|x| x.max(0.0));
        let rg = self.rg(a);
        self.push(v, Op::Relu(a), rg)
    }

    /// Elementwise exponential.
    pub fn exp(&mut self, a: NodeId) -> NodeId {
        let _t = trace::span("graph.fwd.exp");
        let v = self.value(a).map(f32::exp);
        let rg = self.rg(a);
        self.push(v, Op::Exp(a), rg)
    }

    /// Elementwise natural log (inputs must be positive).
    pub fn ln(&mut self, a: NodeId) -> NodeId {
        let _t = trace::span("graph.fwd.ln");
        let v = self.value(a).map(f32::ln);
        let rg = self.rg(a);
        self.push(v, Op::Ln(a), rg)
    }

    /// Adds a constant scalar to every element.
    pub fn add_scalar(&mut self, a: NodeId, s: f32) -> NodeId {
        let _t = trace::span("graph.fwd.add_scalar");
        let v = self.value(a).map(|x| x + s);
        let rg = self.rg(a);
        self.push(v, Op::AddScalar(a), rg)
    }

    /// Row-wise softmax.
    pub fn softmax_rows(&mut self, a: NodeId) -> NodeId {
        let _t = trace::span("graph.fwd.softmax_rows");
        let v = softmax_rows_value(self.value(a));
        let rg = self.rg(a);
        self.push(v, Op::SoftmaxRows(a), rg)
    }

    /// Row-wise log-softmax (numerically stable).
    pub fn log_softmax_rows(&mut self, a: NodeId) -> NodeId {
        let _t = trace::span("graph.fwd.log_softmax_rows");
        let x = self.value(a);
        let mut v = x.clone();
        for r in 0..v.rows() {
            let row = v.row_mut(r);
            let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            let lse = row.iter().map(|&e| (e - max).exp()).sum::<f32>().ln() + max;
            for e in row.iter_mut() {
                *e -= lse;
            }
        }
        let rg = self.rg(a);
        self.push(v, Op::LogSoftmaxRows(a), rg)
    }

    /// Horizontal concatenation.
    pub fn hcat(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let _t = trace::span("graph.fwd.hcat");
        let v = self.value(a).hcat(self.value(b));
        let rg = self.rg(a) || self.rg(b);
        self.push(v, Op::HCat(a, b), rg)
    }

    /// Vertical concatenation.
    pub fn vcat(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let _t = trace::span("graph.fwd.vcat");
        let v = self.value(a).vcat(self.value(b));
        let rg = self.rg(a) || self.rg(b);
        self.push(v, Op::VCat(a, b), rg)
    }

    /// Rows `[from, to)` of the source node.
    pub fn row_slice(&mut self, a: NodeId, from: usize, to: usize) -> NodeId {
        let _t = trace::span("graph.fwd.row_slice");
        let src = self.value(a);
        assert!(from <= to && to <= src.rows(), "row_slice out of range");
        let cols = src.cols();
        let mut data = Vec::with_capacity((to - from) * cols);
        for r in from..to {
            data.extend_from_slice(src.row(r));
        }
        let v = Tensor::from_vec(to - from, cols, data);
        let rg = self.rg(a);
        self.push(v, Op::RowSlice(a, from, to), rg)
    }

    /// Single row `r` as a `[1, d]` node.
    pub fn row(&mut self, a: NodeId, r: usize) -> NodeId {
        self.row_slice(a, r, r + 1)
    }

    /// Gathers rows by index (embedding lookup); indices may repeat.
    pub fn gather_rows(&mut self, a: NodeId, indices: Vec<usize>) -> NodeId {
        let _t = trace::span("graph.fwd.gather_rows");
        let src = self.value(a);
        let cols = src.cols();
        let mut data = Vec::with_capacity(indices.len() * cols);
        for &i in &indices {
            assert!(i < src.rows(), "gather index {i} out of {} rows", src.rows());
            data.extend_from_slice(src.row(i));
        }
        let v = Tensor::from_vec(indices.len(), cols, data);
        let rg = self.rg(a);
        self.push(v, Op::GatherRows(a, indices), rg)
    }

    /// Repeats a `[1, d]` row `n` times into `[n, d]`.
    pub fn repeat_rows(&mut self, a: NodeId, n: usize) -> NodeId {
        let _t = trace::span("graph.fwd.repeat_rows");
        let src = self.value(a);
        assert_eq!(src.rows(), 1, "repeat_rows source must be [1, d]");
        let mut data = Vec::with_capacity(n * src.cols());
        for _ in 0..n {
            data.extend_from_slice(src.row(0));
        }
        let v = Tensor::from_vec(n, src.cols(), data);
        let rg = self.rg(a);
        self.push(v, Op::RepeatRows(a, n), rg)
    }

    /// Sum of all elements as `[1, 1]`.
    pub fn sum_all(&mut self, a: NodeId) -> NodeId {
        let _t = trace::span("graph.fwd.sum_all");
        let v = Tensor::from_vec(1, 1, vec![self.value(a).sum()]);
        let rg = self.rg(a);
        self.push(v, Op::SumAll(a), rg)
    }

    /// Column-wise mean over rows: `[n, d] -> [1, d]`.
    pub fn mean_rows(&mut self, a: NodeId) -> NodeId {
        let _t = trace::span("graph.fwd.mean_rows");
        let src = self.value(a);
        let n = src.rows().max(1) as f32;
        let mut out = vec![0.0; src.cols()];
        for r in 0..src.rows() {
            for (o, &x) in out.iter_mut().zip(src.row(r)) {
                *o += x;
            }
        }
        for o in &mut out {
            *o /= n;
        }
        let cols = src.cols();
        let rg = self.rg(a);
        self.push(Tensor::from_vec(1, cols, out), Op::MeanRows(a), rg)
    }

    /// Column-wise sum over rows: `[n, d] -> [1, d]`.
    pub fn sum_rows(&mut self, a: NodeId) -> NodeId {
        let _t = trace::span("graph.fwd.sum_rows");
        let src = self.value(a);
        let mut out = vec![0.0; src.cols()];
        for r in 0..src.rows() {
            for (o, &x) in out.iter_mut().zip(src.row(r)) {
                *o += x;
            }
        }
        let cols = src.cols();
        let rg = self.rg(a);
        self.push(Tensor::from_vec(1, cols, out), Op::SumRows(a), rg)
    }

    /// Sliding-window flatten used by the char-CNN: `[n, d] -> [n-k+1, k*d]`.
    ///
    /// # Panics
    /// Panics if `n < k`; callers pad with zero rows first (§IV-B pads so
    /// that at least one slice is available).
    pub fn unfold(&mut self, a: NodeId, k: usize) -> NodeId {
        let _t = trace::span("graph.fwd.unfold");
        let src = self.value(a);
        assert!(k >= 1 && src.rows() >= k, "unfold needs at least k={k} rows, got {}", src.rows());
        let out_rows = src.rows() - k + 1;
        let cols = src.cols();
        let mut data = Vec::with_capacity(out_rows * k * cols);
        for r in 0..out_rows {
            for w in 0..k {
                data.extend_from_slice(src.row(r + w));
            }
        }
        let v = Tensor::from_vec(out_rows, k * cols, data);
        let rg = self.rg(a);
        self.push(v, Op::Unfold(a, k), rg)
    }

    /// Mean negative log-likelihood: input must be row-wise log-probabilities
    /// `[n, V]`; `targets[i]` selects the gold class of row `i`.
    pub fn pick_nll(&mut self, logp: NodeId, targets: Vec<usize>) -> NodeId {
        let _t = trace::span("graph.fwd.pick_nll");
        let src = self.value(logp);
        assert_eq!(src.rows(), targets.len(), "pick_nll target count mismatch");
        let mut loss = 0.0;
        for (r, &t) in targets.iter().enumerate() {
            assert!(t < src.cols(), "pick_nll target {t} out of {} classes", src.cols());
            loss -= src.get(r, t);
        }
        loss /= targets.len().max(1) as f32;
        let rg = self.rg(logp);
        self.push(Tensor::from_vec(1, 1, vec![loss]), Op::PickNll(logp, targets), rg)
    }

    /// Mean binary cross-entropy with logits against fixed 0/1 targets
    /// (numerically stable formulation).
    pub fn bce_with_logits(&mut self, logits: NodeId, targets: Tensor) -> NodeId {
        let _t = trace::span("graph.fwd.bce_with_logits");
        let x = self.value(logits);
        assert_eq!(x.shape(), targets.shape(), "bce shape mismatch");
        let n = x.len().max(1) as f32;
        let mut loss = 0.0;
        for (&xi, &ti) in x.data().iter().zip(targets.data()) {
            loss += xi.max(0.0) - xi * ti + (1.0 + (-xi.abs()).exp()).ln();
        }
        loss /= n;
        let rg = self.rg(logits);
        self.push(Tensor::from_vec(1, 1, vec![loss]), Op::BceWithLogits(logits, targets), rg)
    }

    /// Runs reverse-mode differentiation from a scalar `[1, 1]` loss node.
    ///
    /// After this call, [`Graph::grad`] returns gradients for every
    /// gradient-tracked node and [`Graph::param_grads`] collects them per
    /// parameter.
    pub fn backward(&mut self, loss: NodeId) {
        let _t = trace::span("graph.backward");
        trace::record("graph.nodes_per_backward", self.nodes.len() as f64);
        trace::record("graph.param_bindings_per_backward", self.param_bindings.len() as f64);
        assert_eq!(self.value(loss).shape(), (1, 1), "backward requires a scalar loss");
        self.grads = (0..self.nodes.len()).map(|_| None).collect();
        self.grads[loss.0] = Some(Tensor::from_vec(1, 1, vec![1.0]));
        for i in (0..=loss.0).rev() {
            if self.grads[i].is_none() || !self.nodes[i].requires_grad {
                continue;
            }
            let g = self.grads[i].take().expect("checked above");
            self.backprop_node(i, &g);
            self.grads[i] = Some(g);
        }
    }

    fn accum(&mut self, id: NodeId, delta: &Tensor) {
        if !self.nodes[id.0].requires_grad {
            return;
        }
        match &mut self.grads[id.0] {
            Some(g) => g.add_scaled(delta, 1.0),
            slot @ None => *slot = Some(delta.clone()),
        }
    }

    fn backprop_node(&mut self, i: usize, g: &Tensor) {
        // Clone the op descriptor so we can call &mut self accumulation.
        let op = self.nodes[i].op.clone();
        let _t = trace::span(bwd_span_name(&op));
        match op {
            Op::Leaf | Op::Input | Op::Param => {}
            Op::Add(a, b) => {
                self.accum(a, g);
                self.accum(b, g);
            }
            Op::Sub(a, b) => {
                self.accum(a, g);
                let neg = g.map(|x| -x);
                self.accum(b, &neg);
            }
            Op::Mul(a, b) => {
                let da = g.zip(self.value(b), |gi, bi| gi * bi);
                let db = g.zip(self.value(a), |gi, ai| gi * ai);
                self.accum(a, &da);
                self.accum(b, &db);
            }
            Op::Scale(a, s) => {
                let da = g.map(|x| x * s);
                self.accum(a, &da);
            }
            Op::AddRow(a, row) => {
                self.accum(a, g);
                let mut dr = Tensor::zeros(1, g.cols());
                for r in 0..g.rows() {
                    for (o, &x) in dr.row_mut(0).iter_mut().zip(g.row(r)) {
                        *o += x;
                    }
                }
                self.accum(row, &dr);
            }
            Op::MulRow(a, row) => {
                let rv = self.value(row).clone();
                let av = self.value(a).clone();
                let mut da = g.clone();
                for r in 0..da.rows() {
                    for (o, &m) in da.row_mut(r).iter_mut().zip(rv.row(0)) {
                        *o *= m;
                    }
                }
                self.accum(a, &da);
                let mut dr = Tensor::zeros(1, g.cols());
                for r in 0..g.rows() {
                    for c in 0..g.cols() {
                        dr.row_mut(0)[c] += g.get(r, c) * av.get(r, c);
                    }
                }
                self.accum(row, &dr);
            }
            Op::Matmul(a, b) => {
                let da = g.matmul(&self.value(b).transpose());
                let db = self.value(a).transpose().matmul(g);
                self.accum(a, &da);
                self.accum(b, &db);
            }
            Op::Transpose(a) => {
                let da = g.transpose();
                self.accum(a, &da);
            }
            Op::Sigmoid(a) => {
                let y = &self.nodes[i].value;
                let da = g.zip(y, |gi, yi| gi * yi * (1.0 - yi));
                self.accum(a, &da);
            }
            Op::Tanh(a) => {
                let y = &self.nodes[i].value;
                let da = g.zip(y, |gi, yi| gi * (1.0 - yi * yi));
                self.accum(a, &da);
            }
            Op::Relu(a) => {
                let y = &self.nodes[i].value;
                let da = g.zip(y, |gi, yi| if yi > 0.0 { gi } else { 0.0 });
                self.accum(a, &da);
            }
            Op::Exp(a) => {
                let y = &self.nodes[i].value;
                let da = g.zip(y, |gi, yi| gi * yi);
                self.accum(a, &da);
            }
            Op::Ln(a) => {
                let x = self.value(a);
                let da = g.zip(x, |gi, xi| gi / xi);
                self.accum(a, &da);
            }
            Op::AddScalar(a) => {
                self.accum(a, g);
            }
            Op::SoftmaxRows(a) => {
                let y = self.nodes[i].value.clone();
                let mut da = Tensor::zeros(y.rows(), y.cols());
                for r in 0..y.rows() {
                    let dot: f32 =
                        g.row(r).iter().zip(y.row(r)).map(|(&gi, &yi)| gi * yi).sum();
                    for c in 0..y.cols() {
                        da.set(r, c, y.get(r, c) * (g.get(r, c) - dot));
                    }
                }
                self.accum(a, &da);
            }
            Op::LogSoftmaxRows(a) => {
                let logp = self.nodes[i].value.clone();
                let mut da = Tensor::zeros(logp.rows(), logp.cols());
                for r in 0..logp.rows() {
                    let gsum: f32 = g.row(r).iter().sum();
                    for c in 0..logp.cols() {
                        da.set(r, c, g.get(r, c) - logp.get(r, c).exp() * gsum);
                    }
                }
                self.accum(a, &da);
            }
            Op::HCat(a, b) => {
                let ac = self.value(a).cols();
                let rows = g.rows();
                let mut da = Tensor::zeros(rows, ac);
                let mut db = Tensor::zeros(rows, g.cols() - ac);
                for r in 0..rows {
                    da.row_mut(r).copy_from_slice(&g.row(r)[..ac]);
                    db.row_mut(r).copy_from_slice(&g.row(r)[ac..]);
                }
                self.accum(a, &da);
                self.accum(b, &db);
            }
            Op::VCat(a, b) => {
                let ar = self.value(a).rows();
                let cols = g.cols();
                let mut da = Tensor::zeros(ar, cols);
                let mut db = Tensor::zeros(g.rows() - ar, cols);
                for r in 0..ar {
                    da.row_mut(r).copy_from_slice(g.row(r));
                }
                for r in ar..g.rows() {
                    db.row_mut(r - ar).copy_from_slice(g.row(r));
                }
                self.accum(a, &da);
                self.accum(b, &db);
            }
            Op::RowSlice(a, from, _to) => {
                let src = self.value(a);
                let mut da = Tensor::zeros(src.rows(), src.cols());
                for r in 0..g.rows() {
                    da.row_mut(from + r).copy_from_slice(g.row(r));
                }
                self.accum(a, &da);
            }
            Op::GatherRows(a, indices) => {
                let src = self.value(a);
                let mut da = Tensor::zeros(src.rows(), src.cols());
                for (r, &idx) in indices.iter().enumerate() {
                    for (o, &x) in da.row_mut(idx).iter_mut().zip(g.row(r)) {
                        *o += x;
                    }
                }
                self.accum(a, &da);
            }
            Op::RepeatRows(a, _n) => {
                let mut da = Tensor::zeros(1, g.cols());
                for r in 0..g.rows() {
                    for (o, &x) in da.row_mut(0).iter_mut().zip(g.row(r)) {
                        *o += x;
                    }
                }
                self.accum(a, &da);
            }
            Op::SumAll(a) => {
                let src = self.value(a);
                let da = Tensor::full(src.rows(), src.cols(), g.scalar());
                self.accum(a, &da);
            }
            Op::MeanRows(a) => {
                let src = self.value(a);
                let n = src.rows().max(1) as f32;
                let mut da = Tensor::zeros(src.rows(), src.cols());
                for r in 0..src.rows() {
                    for (o, &x) in da.row_mut(r).iter_mut().zip(g.row(0)) {
                        *o = x / n;
                    }
                }
                self.accum(a, &da);
            }
            Op::SumRows(a) => {
                let src = self.value(a);
                let mut da = Tensor::zeros(src.rows(), src.cols());
                for r in 0..src.rows() {
                    da.row_mut(r).copy_from_slice(g.row(0));
                }
                self.accum(a, &da);
            }
            Op::Unfold(a, k) => {
                let src = self.value(a);
                let d = src.cols();
                let mut da = Tensor::zeros(src.rows(), d);
                for r in 0..g.rows() {
                    for w in 0..k {
                        for c in 0..d {
                            let v = g.get(r, w * d + c);
                            da.set(r + w, c, da.get(r + w, c) + v);
                        }
                    }
                }
                self.accum(a, &da);
            }
            Op::PickNll(a, targets) => {
                let src = self.value(a);
                let n = targets.len().max(1) as f32;
                let scale = g.scalar() / n;
                let mut da = Tensor::zeros(src.rows(), src.cols());
                for (r, &t) in targets.iter().enumerate() {
                    da.set(r, t, -scale);
                }
                self.accum(a, &da);
            }
            Op::BceWithLogits(a, targets) => {
                let x = self.value(a);
                let n = x.len().max(1) as f32;
                let scale = g.scalar() / n;
                let da = x.zip(&targets, |xi, ti| {
                    let s = 1.0 / (1.0 + (-xi).exp());
                    scale * (s - ti)
                });
                self.accum(a, &da);
            }
        }
    }

    /// Collects accumulated gradients per bound parameter, merging multiple
    /// bindings of the same parameter. Output order is the order in which
    /// each parameter was *first* bound (stable across calls), and the
    /// merge is ParamId-indexed so a graph with `n` bindings costs O(n),
    /// not O(n²).
    pub fn param_grads(&self) -> Vec<(ParamId, Tensor)> {
        use std::collections::hash_map::Entry;
        let mut merged: Vec<(ParamId, Tensor)> = Vec::with_capacity(self.param_bindings.len());
        let mut slot: std::collections::HashMap<ParamId, usize> =
            std::collections::HashMap::with_capacity(self.param_bindings.len());
        for &(node, pid) in &self.param_bindings {
            let Some(g) = self.grad(node) else { continue };
            match slot.entry(pid) {
                Entry::Occupied(e) => merged[*e.get()].1.add_scaled(g, 1.0),
                Entry::Vacant(e) => {
                    e.insert(merged.len());
                    merged.push((pid, g.clone()));
                }
            }
        }
        merged
    }
}

/// Backward-pass span name per op kind, for `Op`-level profiling.
fn bwd_span_name(op: &Op) -> &'static str {
    match op {
        Op::Leaf => "graph.bwd.leaf",
        Op::Input => "graph.bwd.input",
        Op::Param => "graph.bwd.param",
        Op::Add(..) => "graph.bwd.add",
        Op::Sub(..) => "graph.bwd.sub",
        Op::Mul(..) => "graph.bwd.mul",
        Op::Scale(..) => "graph.bwd.scale",
        Op::AddRow(..) => "graph.bwd.add_row",
        Op::MulRow(..) => "graph.bwd.mul_row",
        Op::Matmul(..) => "graph.bwd.matmul",
        Op::Transpose(..) => "graph.bwd.transpose",
        Op::Sigmoid(..) => "graph.bwd.sigmoid",
        Op::Tanh(..) => "graph.bwd.tanh",
        Op::Relu(..) => "graph.bwd.relu",
        Op::SoftmaxRows(..) => "graph.bwd.softmax_rows",
        Op::LogSoftmaxRows(..) => "graph.bwd.log_softmax_rows",
        Op::HCat(..) => "graph.bwd.hcat",
        Op::VCat(..) => "graph.bwd.vcat",
        Op::RowSlice(..) => "graph.bwd.row_slice",
        Op::GatherRows(..) => "graph.bwd.gather_rows",
        Op::RepeatRows(..) => "graph.bwd.repeat_rows",
        Op::SumAll(..) => "graph.bwd.sum_all",
        Op::MeanRows(..) => "graph.bwd.mean_rows",
        Op::SumRows(..) => "graph.bwd.sum_rows",
        Op::Unfold(..) => "graph.bwd.unfold",
        Op::Exp(..) => "graph.bwd.exp",
        Op::Ln(..) => "graph.bwd.ln",
        Op::AddScalar(..) => "graph.bwd.add_scalar",
        Op::PickNll(..) => "graph.bwd.pick_nll",
        Op::BceWithLogits(..) => "graph.bwd.bce_with_logits",
    }
}

/// Row-wise softmax of a plain tensor (shared with inference-only paths).
pub fn softmax_rows_value(x: &Tensor) -> Tensor {
    let mut v = x.clone();
    for r in 0..v.rows() {
        let row = v.row_mut(r);
        let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0;
        for e in row.iter_mut() {
            *e = (*e - max).exp();
            sum += *e;
        }
        for e in row.iter_mut() {
            *e /= sum;
        }
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_values_compose() {
        let mut g = Graph::new();
        let a = g.leaf(Tensor::row_vector(&[1.0, 2.0]));
        let b = g.leaf(Tensor::row_vector(&[3.0, 4.0]));
        let s = g.add(a, b);
        assert_eq!(g.value(s).data(), &[4.0, 6.0]);
        let m = g.mul(a, b);
        assert_eq!(g.value(m).data(), &[3.0, 8.0]);
    }

    #[test]
    fn backward_through_add_mul() {
        // loss = sum(a * b) => dL/da = b, dL/db = a
        let mut g = Graph::new();
        let a = g.input(Tensor::row_vector(&[1.0, 2.0]));
        let b = g.input(Tensor::row_vector(&[3.0, 4.0]));
        let m = g.mul(a, b);
        let loss = g.sum_all(m);
        g.backward(loss);
        assert_eq!(g.grad(a).unwrap().data(), &[3.0, 4.0]);
        assert_eq!(g.grad(b).unwrap().data(), &[1.0, 2.0]);
    }

    #[test]
    fn backward_matmul_matches_manual() {
        // loss = sum(A @ B); dA = ones @ B^T, dB = A^T @ ones
        let mut g = Graph::new();
        let a = g.input(Tensor::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]));
        let b = g.input(Tensor::from_vec(2, 2, vec![5.0, 6.0, 7.0, 8.0]));
        let c = g.matmul(a, b);
        let loss = g.sum_all(c);
        g.backward(loss);
        // dA[i][k] = sum_j B[k][j]
        assert_eq!(g.grad(a).unwrap().data(), &[11.0, 15.0, 11.0, 15.0]);
        // dB[k][j] = sum_i A[i][k]
        assert_eq!(g.grad(b).unwrap().data(), &[4.0, 4.0, 6.0, 6.0]);
    }

    #[test]
    fn leaf_has_no_grad() {
        let mut g = Graph::new();
        let a = g.leaf(Tensor::row_vector(&[1.0]));
        let b = g.input(Tensor::row_vector(&[2.0]));
        let m = g.mul(a, b);
        let loss = g.sum_all(m);
        g.backward(loss);
        assert!(g.grad(a).is_none());
        assert!(g.grad(b).is_some());
    }

    #[test]
    fn gather_rows_accumulates_duplicates() {
        let mut g = Graph::new();
        let e = g.input(Tensor::from_vec(3, 2, vec![1.0; 6]));
        let picked = g.gather_rows(e, vec![0, 2, 0]);
        assert_eq!(g.value(picked).rows(), 3);
        let loss = g.sum_all(picked);
        g.backward(loss);
        let grad = g.grad(e).unwrap();
        assert_eq!(grad.row(0), &[2.0, 2.0]); // picked twice
        assert_eq!(grad.row(1), &[0.0, 0.0]);
        assert_eq!(grad.row(2), &[1.0, 1.0]);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let mut g = Graph::new();
        let a = g.leaf(Tensor::from_vec(2, 3, vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0]));
        let s = g.softmax_rows(a);
        for r in 0..2 {
            let sum: f32 = g.value(s).row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn log_softmax_is_log_of_softmax() {
        let mut g = Graph::new();
        let x = Tensor::from_vec(1, 3, vec![0.3, -0.5, 2.0]);
        let a = g.leaf(x.clone());
        let s = g.softmax_rows(a);
        let b = g.leaf(x);
        let l = g.log_softmax_rows(b);
        for c in 0..3 {
            let diff = g.value(s).get(0, c).ln() - g.value(l).get(0, c);
            assert!(diff.abs() < 1e-5);
        }
    }

    #[test]
    fn bce_matches_closed_form() {
        // logits = 0 => sigmoid = 0.5 => loss = ln 2 regardless of target
        let mut g = Graph::new();
        let a = g.input(Tensor::row_vector(&[0.0, 0.0]));
        let loss = g.bce_with_logits(a, Tensor::row_vector(&[1.0, 0.0]));
        assert!((g.value(loss).scalar() - std::f32::consts::LN_2).abs() < 1e-6);
        g.backward(loss);
        let grad = g.grad(a).unwrap();
        // d/dx = (sigmoid(x) - t)/n = (0.5 - t)/2
        assert!((grad.data()[0] - (-0.25)).abs() < 1e-6);
        assert!((grad.data()[1] - 0.25).abs() < 1e-6);
    }

    #[test]
    fn pick_nll_selects_targets() {
        let mut g = Graph::new();
        let a = g.input(Tensor::from_vec(2, 2, vec![1.0, 3.0, 2.0, 0.5]));
        let lp = g.log_softmax_rows(a);
        let loss = g.pick_nll(lp, vec![1, 0]);
        // manual: -(logp[0][1] + logp[1][0]) / 2
        let expected = -(g.value(lp).get(0, 1) + g.value(lp).get(1, 0)) / 2.0;
        assert!((g.value(loss).scalar() - expected).abs() < 1e-6);
    }

    #[test]
    fn unfold_shapes_and_backward() {
        let mut g = Graph::new();
        let a = g.input(Tensor::from_vec(4, 2, vec![1.0; 8]));
        let u = g.unfold(a, 3);
        assert_eq!(g.value(u).shape(), (2, 6));
        let loss = g.sum_all(u);
        g.backward(loss);
        let grad = g.grad(a).unwrap();
        // middle rows appear in both windows
        assert_eq!(grad.row(0), &[1.0, 1.0]);
        assert_eq!(grad.row(1), &[2.0, 2.0]);
        assert_eq!(grad.row(2), &[2.0, 2.0]);
        assert_eq!(grad.row(3), &[1.0, 1.0]);
    }

    #[test]
    fn param_grads_merge_multiple_bindings() {
        let mut store = ParamStore::new();
        let pid = store.add("w", Tensor::row_vector(&[2.0]));
        let mut g = Graph::new();
        let p1 = g.param(&store, pid);
        let p2 = g.param(&store, pid);
        let s = g.mul(p1, p2); // w * w
        let loss = g.sum_all(s);
        g.backward(loss);
        let grads = g.param_grads();
        assert_eq!(grads.len(), 1);
        // d(w^2)/dw = 2w = 4
        assert_eq!(grads[0].1.data(), &[4.0]);
    }

    #[test]
    fn param_grads_merge_many_repeated_bindings_in_first_bound_order() {
        // Regression companion to the ParamId-indexed merge: many params,
        // each bound many times, interleaved — the output must keep
        // first-binding order and sum every binding's gradient.
        const PARAMS: usize = 40;
        const REPEATS: usize = 25;
        let mut store = ParamStore::new();
        let pids: Vec<ParamId> = (0..PARAMS)
            .map(|i| store.add(format!("w{i}"), Tensor::row_vector(&[1.0 + i as f32])))
            .collect();
        let mut g = Graph::new();
        let mut acc: Option<NodeId> = None;
        for r in 0..REPEATS {
            for &pid in &pids {
                // Interleave bindings so first-binding order != last-use order.
                let node = g.param(&store, pid);
                let scaled = g.scale(node, (r + 1) as f32);
                let s = g.sum_all(scaled);
                acc = Some(match acc {
                    None => s,
                    Some(a) => g.add(a, s),
                });
            }
        }
        g.backward(acc.unwrap());
        let grads = g.param_grads();
        assert_eq!(grads.len(), PARAMS);
        let expected_order: Vec<ParamId> = pids.clone();
        let got_order: Vec<ParamId> = grads.iter().map(|(id, _)| *id).collect();
        assert_eq!(got_order, expected_order, "first-binding order must be preserved");
        // d/dw of sum_r (r+1) * w = sum of 1..=REPEATS.
        let expected = (REPEATS * (REPEATS + 1) / 2) as f32;
        for (_, grad) in &grads {
            assert_eq!(grad.data(), &[expected]);
        }
    }

    #[test]
    fn repeat_rows_backward_sums() {
        let mut g = Graph::new();
        let a = g.input(Tensor::row_vector(&[1.0, 2.0]));
        let r = g.repeat_rows(a, 3);
        assert_eq!(g.value(r).shape(), (3, 2));
        let loss = g.sum_all(r);
        g.backward(loss);
        assert_eq!(g.grad(a).unwrap().data(), &[3.0, 3.0]);
    }

    #[test]
    fn row_slice_grad_is_zero_padded() {
        let mut g = Graph::new();
        let a = g.input(Tensor::from_vec(3, 1, vec![1.0, 2.0, 3.0]));
        let s = g.row_slice(a, 1, 2);
        let loss = g.sum_all(s);
        g.backward(loss);
        assert_eq!(g.grad(a).unwrap().data(), &[0.0, 1.0, 0.0]);
    }
}
