//! A small std-only scoped thread pool with a deterministic fan-out
//! contract.
//!
//! Every parallel construct in the workspace goes through this module, and
//! all of them obey one rule: **the result of a parallel run is bitwise
//! identical to the serial run**. That holds because work is only ever
//! split into tasks that write disjoint output regions and each task is
//! computed by exactly the same scalar code the serial path runs —
//! threads change *who* computes a region, never *what* is computed or in
//! which order floats are accumulated within it. Reductions that combine
//! task outputs (e.g. minibatch gradient merging in `nlidb-core`) iterate
//! task results in index order on the calling thread, so their
//! floating-point addition order is also thread-count independent.
//!
//! ## Worker model
//!
//! Workers are spawned once (lazily, detached) and block on a condvar
//! waiting for jobs. [`parallel_for`] enqueues one job — a lifetime-erased
//! `&(dyn Fn(usize) + Sync)` plus an atomic task cursor — and the calling
//! thread participates in draining it, so a pool size of 1 is *exactly*
//! the serial path (no job is ever enqueued). Nested [`parallel_for`]
//! calls from inside a worker run serially on that worker; this keeps
//! example-level data parallelism (outer) and op-level parallelism
//! (inner) from deadlocking the fixed-size pool and keeps each task's
//! arithmetic single-threaded and reproducible.
//!
//! ## The `NLIDB_THREADS` knob
//!
//! The pool size defaults to `NLIDB_THREADS` when set (minimum 1), else
//! [`std::thread::available_parallelism`]. `NLIDB_THREADS=1` disables the
//! pool entirely. [`set_threads`] overrides the size at runtime (tests
//! and benches use it to compare serial vs parallel in one process).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

use nlidb_trace as trace;

/// Pool size sentinel meaning "not yet resolved from the environment".
const UNSET: usize = 0;

/// Current pool size (resolved lazily; see [`num_threads`]).
static THREADS: AtomicUsize = AtomicUsize::new(UNSET);

std::thread_local! {
    /// True on pool worker threads; nested fan-outs run serially there.
    static IN_WORKER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// The pool size the environment asks for: `NLIDB_THREADS` when set and
/// `>= 1`, otherwise [`std::thread::available_parallelism`].
pub fn default_threads() -> usize {
    if let Ok(v) = std::env::var("NLIDB_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Number of threads parallel constructs may use (including the caller).
pub fn num_threads() -> usize {
    let n = THREADS.load(Ordering::Relaxed);
    if n != UNSET {
        return n;
    }
    let resolved = default_threads();
    // Racing initializers compute the same value; last store wins harmlessly.
    THREADS.store(resolved, Ordering::Relaxed);
    resolved
}

/// Overrides the pool size at runtime (clamped to `>= 1`).
///
/// `set_threads(1)` routes every parallel construct through the exact
/// serial code path; `set_threads(default_threads())` restores the
/// environment default.
pub fn set_threads(n: usize) {
    THREADS.store(n.max(1), Ordering::Relaxed);
}

/// One fan-out: a lifetime-erased task function plus progress counters.
struct Job {
    /// Points at the caller's closure. Valid until `done` flips because
    /// the caller blocks in [`parallel_for`] until every task finished.
    task: *const (dyn Fn(usize) + Sync),
    total: usize,
    /// Next unclaimed task index.
    next: AtomicUsize,
    /// Tasks claimed but not yet finished + tasks unclaimed.
    unfinished: AtomicUsize,
    done: Mutex<bool>,
    done_cv: Condvar,
}

// SAFETY: `Job` is only non-auto-`Send` because of the raw `task`
// pointer. It points at a `Sync` closure that outlives the job (the
// caller blocks until `unfinished` reaches zero before returning), so
// moving the pointer to another thread cannot leave it dangling.
unsafe impl Send for Job {}
// SAFETY: shared access is sound for the same reason: the pointee is
// `Sync` (so `&closure` may be used from any thread) and stays alive
// until every task finished; all other fields are atomics/locks.
unsafe impl Sync for Job {}

impl Job {
    /// Claims and runs tasks until the cursor is exhausted.
    ///
    /// Ordering argument (the task cursor): `next.fetch_add(Relaxed)` is
    /// sound because the RMW alone makes every claim unique — no two
    /// threads can observe the same index — and claiming publishes
    /// nothing: the closure and its captures were made visible to every
    /// worker by the channel send that delivered the job (a
    /// release/acquire pair), before any claim. The cursor orders *who
    /// runs which task*, never *what memory they see*. Completion is
    /// different: `unfinished.fetch_sub(AcqRel)` makes each task's
    /// writes visible to the thread that observes zero and wakes the
    /// caller, so the caller reads every task's output after its own
    /// acquire.
    fn drain(&self) {
        let mut claimed = 0u64;
        loop {
            let i = self.next.fetch_add(1, Ordering::Relaxed);
            if i >= self.total {
                break;
            }
            claimed += 1;
            // SAFETY: see the struct-level invariant on `task`.
            (unsafe { &*self.task })(i);
            if self.unfinished.fetch_sub(1, Ordering::AcqRel) == 1 {
                let mut done = self.done.lock().expect("job latch poisoned");
                *done = true;
                self.done_cv.notify_all();
            }
        }
        // Flushed once per drain (not per task) so tracing stays cheap.
        if claimed > 0 && trace::enabled() {
            let name = if IN_WORKER.with(|w| w.get()) {
                "pool.tasks_claimed_by_workers"
            } else {
                "pool.tasks_claimed_by_caller"
            };
            trace::count(name, claimed);
        }
    }

    /// Blocks until every task has finished.
    fn wait(&self) {
        let mut done = self.done.lock().expect("job latch poisoned");
        while !*done {
            done = self.done_cv.wait(done).expect("job latch poisoned");
        }
    }
}

struct Pool {
    queue: Mutex<VecDeque<Arc<Job>>>,
    ready: Condvar,
    spawned: AtomicUsize,
}

static POOL: OnceLock<Pool> = OnceLock::new();

fn pool() -> &'static Pool {
    POOL.get_or_init(|| Pool {
        queue: Mutex::new(VecDeque::new()),
        ready: Condvar::new(),
        spawned: AtomicUsize::new(0),
    })
}

/// Ensures at least `target` detached workers exist.
fn ensure_workers(target: usize) {
    let p = pool();
    if p.spawned.load(Ordering::Relaxed) >= target {
        return;
    }
    // The queue lock doubles as the spawn lock.
    let _guard = p.queue.lock().expect("pool queue poisoned");
    while p.spawned.load(Ordering::Relaxed) < target {
        let id = p.spawned.fetch_add(1, Ordering::Relaxed);
        std::thread::Builder::new()
            .name(format!("nlidb-pool-{id}"))
            .spawn(worker_loop)
            .expect("spawn pool worker");
    }
}

fn worker_loop() {
    IN_WORKER.with(|w| w.set(true));
    let p = pool();
    loop {
        let job = {
            let mut q = p.queue.lock().expect("pool queue poisoned");
            loop {
                // Drop fully-claimed jobs; their claimants finish them.
                while q
                    .front()
                    .is_some_and(|j| j.next.load(Ordering::Relaxed) >= j.total)
                {
                    q.pop_front();
                }
                match q.front() {
                    Some(j) => break Arc::clone(j),
                    None => q = p.ready.wait(q).expect("pool queue poisoned"),
                }
            }
        };
        job.drain();
    }
}

/// Runs `f(0), f(1), ..., f(tasks - 1)` exactly once each, fanning out
/// across the pool. Blocks until every invocation has returned.
///
/// Tasks must be independent: which thread runs which index, and in what
/// order, is unspecified. With a pool size of 1 (or when called from
/// inside a pool worker) every task runs serially on the current thread
/// in index order.
pub fn parallel_for<F: Fn(usize) + Sync>(tasks: usize, f: F) {
    if tasks == 0 {
        return;
    }
    let threads = num_threads();
    if tasks == 1 || threads <= 1 || IN_WORKER.with(|w| w.get()) {
        trace::count("pool.serial_tasks", tasks as u64);
        for i in 0..tasks {
            f(i);
        }
        return;
    }
    trace::count("pool.jobs", 1);
    trace::count("pool.tasks", tasks as u64);
    ensure_workers(threads - 1);
    let task_ref: &(dyn Fn(usize) + Sync) = &f;
    // SAFETY: the transmute erases the borrow's lifetime, turning
    // `&'a (dyn Fn(usize) + Sync)` into the `'static`-bounded raw pointer
    // the `Job` field wants (layout-identical: wide pointer to the same
    // trait object). The erasure is sound because the job never outlives
    // this call — `job.wait()` below blocks until every task finished,
    // after which no thread dereferences `task` again.
    let task: *const (dyn Fn(usize) + Sync) = unsafe { std::mem::transmute(task_ref) };
    let job = Arc::new(Job {
        task,
        total: tasks,
        next: AtomicUsize::new(0),
        unfinished: AtomicUsize::new(tasks),
        done: Mutex::new(false),
        done_cv: Condvar::new(),
    });
    {
        let p = pool();
        let mut q = p.queue.lock().expect("pool queue poisoned");
        q.push_back(Arc::clone(&job));
        p.ready.notify_all();
    }
    job.drain();
    job.wait();
}

/// Raw-pointer wrapper that lets disjoint sub-slices be written from
/// multiple workers. Kept private: all aliasing reasoning lives here.
struct SendPtr<T>(*mut T);
// SAFETY: `SendPtr` wraps the base pointer of a `&mut [T]` whose owner
// is blocked inside `parallel_for_chunks` for the wrapper's whole
// lifetime, so sending it to a worker cannot outlive the slice; `T: Send`
// keeps the element type itself movable across threads.
unsafe impl<T: Send> Send for SendPtr<T> {}
// SAFETY: sharing `&SendPtr` only exposes `get()`, and every user derives
// pairwise-disjoint `[start, end)` sub-slices from it (see
// `parallel_for_chunks`), so no two threads ever alias the same element.
unsafe impl<T: Send> Sync for SendPtr<T> {}

impl<T> SendPtr<T> {
    /// Accessor (instead of field access) so closures capture the whole
    /// `SendPtr` — precise closure capture of the bare `*mut T` field
    /// would sidestep the `Sync` wrapper.
    fn get(&self) -> *mut T {
        self.0
    }
}

/// Splits `data` into consecutive chunks of `chunk` elements (the last
/// may be shorter) and runs `f(start_offset, chunk_slice)` for each,
/// fanning chunks out across the pool.
///
/// The chunks partition `data`, so writes are disjoint; determinism
/// follows from each chunk being computed by the same code regardless of
/// which thread claims it.
pub fn parallel_for_chunks<T, F>(data: &mut [T], chunk: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(chunk >= 1, "chunk size must be >= 1");
    let len = data.len();
    if len == 0 {
        return;
    }
    let n_chunks = len.div_ceil(chunk);
    let base = SendPtr(data.as_mut_ptr());
    parallel_for(n_chunks, |c| {
        let start = c * chunk;
        let end = (start + chunk).min(len);
        // SAFETY: [start, end) ranges are pairwise disjoint across chunk
        // indices and within `data`; `parallel_for` does not return until
        // all chunks are done, so no slice outlives the borrow of `data`.
        let part = unsafe {
            std::slice::from_raw_parts_mut(base.get().add(start), end - start)
        };
        f(start, part);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    /// Serializes tests that change the global pool size.
    fn threads_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn parallel_for_runs_every_index_once() {
        let _guard = threads_lock();
        set_threads(4);
        let hits: Vec<AtomicU64> = (0..257).map(|_| AtomicU64::new(0)).collect();
        parallel_for(hits.len(), |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        set_threads(default_threads());
    }

    #[test]
    fn single_thread_runs_inline_in_order() {
        let _guard = threads_lock();
        set_threads(1);
        let seen = Mutex::new(Vec::new());
        parallel_for(100, |i| {
            seen.lock().unwrap().push(i);
        });
        let seen = seen.into_inner().unwrap();
        assert_eq!(seen, (0..100).collect::<Vec<_>>());
        set_threads(default_threads());
    }

    #[test]
    fn nested_parallel_for_completes() {
        let _guard = threads_lock();
        set_threads(3);
        let total = AtomicU64::new(0);
        parallel_for(8, |_| {
            parallel_for(8, |j| {
                total.fetch_add(j as u64, Ordering::Relaxed);
            });
        });
        assert_eq!(total.load(Ordering::Relaxed), 8 * 28);
        set_threads(default_threads());
    }

    #[test]
    fn chunked_writes_cover_the_slice() {
        let _guard = threads_lock();
        set_threads(4);
        let mut data = vec![0usize; 1003];
        parallel_for_chunks(&mut data, 64, |start, part| {
            for (j, x) in part.iter_mut().enumerate() {
                *x = start + j;
            }
        });
        assert!(data.iter().enumerate().all(|(i, &x)| x == i));
        set_threads(default_threads());
    }

    #[test]
    fn set_threads_clamps_to_one() {
        let _guard = threads_lock();
        set_threads(0);
        assert_eq!(num_threads(), 1);
        set_threads(default_threads());
    }

    #[test]
    fn zero_tasks_is_a_noop() {
        parallel_for(0, |_| panic!("must not run"));
        parallel_for_chunks::<u8, _>(&mut [], 4, |_, _| panic!("must not run"));
    }
}
