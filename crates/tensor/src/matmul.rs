//! Blocked matmul fast path with a packed-B layout and SIMD dispatch.
//!
//! [`Tensor::matmul`](crate::Tensor::matmul) routes through
//! [`matmul_into`], which picks between three kernels:
//!
//! - **Scalar reference** — the original i-k-j loop
//!   ([`scalar_row_into`]), still the semantic ground truth.
//! - **Single-row** — a `[1, K] @ [K, N]` product (the decode-time vocab
//!   projection) has only one output row, so the classic row fan-out can
//!   never parallelize it; instead the output row is split into *column*
//!   chunks across the pool, each computed by the same scalar loop.
//! - **Blocked** — for `M >= MR`, B is packed into column panels of
//!   width [`NR`] so the micro-kernel streams contiguous memory, and an
//!   `MR x NR` register tile accumulates [`MR`] output rows at once.
//!
//! ## The reduction-order invariant
//!
//! Every kernel computes each output cell `out[i][j]` as the strictly
//! sequential sum `((0 + a[i][0]*b[0][j]) + a[i][1]*b[1][j]) + ...` — the
//! same association the scalar reference uses. Blocking and packing change
//! *which cells are in flight together* and *where B's values live*, never
//! the per-cell addition order, so every path is bitwise identical to the
//! reference (pinned by seeded differential tests). For the same reason the
//! kernels never use FMA (`mul_add`): fusing the rounding step would change
//! the bits. Rust guarantees no implicit FP contraction, so the
//! `target_feature` wrappers below may auto-vectorize the mul-then-add
//! bodies without breaking the invariant.
//!
//! The kernel choice is runtime-selectable via [`set_matmul_kernel`] so
//! differential tests and benches can force [`MatmulKernel::Reference`]
//! in-process; `Auto` (the default) picks the fastest applicable path.

use std::sync::atomic::{AtomicU8, Ordering};

use crate::pool;

/// Minimum multiply-accumulate count (`rows * inner * cols`) before
/// [`matmul_into`] fans out across the pool; below this the fixed cost of
/// a fan-out exceeds the arithmetic.
pub(crate) const PAR_MATMUL_MIN_WORK: usize = 64 * 64 * 64;

/// Minimum multiply-accumulate count before the blocked kernel engages;
/// below this the pack of B costs more than the cache locality buys.
const BLOCKED_MIN_WORK: usize = 32 * 32 * 32;

/// Row height of the register tile: rows of A processed together.
const MR: usize = 4;

/// Column width of a packed-B panel (and of the register tile).
const NR: usize = 16;

/// Which matmul implementation [`matmul_into`] uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MatmulKernel {
    /// The original scalar i-k-j loop (row fan-out only). The ground
    /// truth that every fast path must match bitwise.
    Reference,
    /// Runtime choice between the scalar, single-row-chunked, and
    /// blocked/packed kernels (the default).
    Auto,
}

/// Current kernel selection (0 = Auto, 1 = Reference).
static KERNEL: AtomicU8 = AtomicU8::new(0);

/// Overrides the kernel [`Tensor::matmul`](crate::Tensor::matmul) uses.
///
/// Differential tests and benches use this to compare the fast paths
/// against the scalar reference in one process; both settings produce
/// bitwise-identical results, so this is a performance knob, not a
/// semantic one.
pub fn set_matmul_kernel(k: MatmulKernel) {
    // lint:allow(atomic-ordering): standalone mode flag; both kernels are bitwise-identical, so a stale read changes speed, never bytes.
    KERNEL.store(if k == MatmulKernel::Reference { 1 } else { 0 }, Ordering::Relaxed);
}

/// The kernel selection currently in effect.
pub fn matmul_kernel() -> MatmulKernel {
    // lint:allow(atomic-ordering): same mode-flag argument as `set_matmul_kernel`.
    if KERNEL.load(Ordering::Relaxed) == 1 {
        MatmulKernel::Reference
    } else {
        MatmulKernel::Auto
    }
}

/// SIMD capability of the host, detected once (0 unset, 1 scalar,
/// 2 AVX2, 3 AVX-512F).
static SIMD_LEVEL: AtomicU8 = AtomicU8::new(0);

#[derive(Clone, Copy, PartialEq, Eq)]
enum SimdLevel {
    Scalar,
    Avx2,
    Avx512,
}

fn simd_level() -> SimdLevel {
    // lint:allow(atomic-ordering): capability cache; every initializer computes the same value, so a missed store only repeats detection.
    match SIMD_LEVEL.load(Ordering::Relaxed) {
        1 => SimdLevel::Scalar,
        2 => SimdLevel::Avx2,
        3 => SimdLevel::Avx512,
        _ => {
            let detected = detect_simd();
            let code = match detected {
                SimdLevel::Scalar => 1,
                SimdLevel::Avx2 => 2,
                SimdLevel::Avx512 => 3,
            };
            // Racing initializers store the same value; last wins harmlessly.
            // lint:allow(atomic-ordering): same capability-cache argument as the load above.
            SIMD_LEVEL.store(code, Ordering::Relaxed);
            detected
        }
    }
}

#[cfg(target_arch = "x86_64")]
fn detect_simd() -> SimdLevel {
    if std::arch::is_x86_feature_detected!("avx512f") {
        SimdLevel::Avx512
    } else if std::arch::is_x86_feature_detected!("avx2") {
        SimdLevel::Avx2
    } else {
        SimdLevel::Scalar
    }
}

#[cfg(not(target_arch = "x86_64"))]
fn detect_simd() -> SimdLevel {
    SimdLevel::Scalar
}

/// Accumulates one row of `a[m, k] @ b[k, n]` into `out_row` (assumed
/// zeroed): the scalar reference kernel. `a_row` is row `i` of A.
#[inline]
pub(crate) fn scalar_row_into(a_row: &[f32], b: &[f32], n: usize, out_row: &mut [f32]) {
    for (kk, &a_ik) in a_row.iter().enumerate() {
        let b_row = &b[kk * n..kk * n + n];
        for (o, &bv) in out_row.iter_mut().zip(b_row) {
            *o += a_ik * bv;
        }
    }
}

/// Computes `out = a[m, k] @ b[k, n]` (`out` assumed zeroed), dispatching
/// between the reference, single-row, and blocked kernels. Every path
/// produces bitwise-identical output (see module docs).
pub(crate) fn matmul_into(a: &[f32], m: usize, k: usize, b: &[f32], n: usize, out: &mut [f32]) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    let work = m * k * n;
    let reference = matmul_kernel() == MatmulKernel::Reference;
    let threads = pool::num_threads();

    if m == 1 {
        if !reference && work >= PAR_MATMUL_MIN_WORK && threads > 1 {
            // Single-row fast path: there is only one output row, so fan
            // out over *column* chunks of it instead of rows. Each chunk's
            // cells still run the full k loop in order, so the result is
            // bitwise identical to the serial row kernel.
            let chunk = n.div_ceil(4 * threads).max(1);
            pool::parallel_for_chunks(out, chunk, |offset, part| {
                for (kk, &a_ik) in a.iter().enumerate() {
                    let b_part = &b[kk * n + offset..kk * n + offset + part.len()];
                    for (o, &bv) in part.iter_mut().zip(b_part) {
                        *o += a_ik * bv;
                    }
                }
            });
        } else {
            scalar_row_into(a, b, n, out);
        }
        return;
    }

    if !reference && m >= MR && work >= BLOCKED_MIN_WORK {
        // The pack scratch is reused across calls (thread-local) so the
        // hot path does not mmap/fault a fresh K*N buffer per product.
        PACK_SCRATCH.with(|cell| {
            let mut scratch = cell.borrow_mut();
            pack_b(b, k, n, &mut scratch);
            let packed: &[f32] = &scratch;
            if work >= PAR_MATMUL_MIN_WORK && threads > 1 {
                // Fan out over bands of whole rows; band heights are a
                // multiple of MR so only the final band sees edge rows.
                let rows_per = next_multiple(m.div_ceil(4 * threads).max(1), MR);
                pool::parallel_for_chunks(out, rows_per * n, |offset, band| {
                    let r0 = offset / n;
                    blocked_rows(&a[r0 * k..], band.len() / n, k, packed, n, band);
                });
            } else {
                blocked_rows(a, m, k, packed, n, out);
            }
        });
        return;
    }

    // Reference / small-product path: the original per-row scalar loop,
    // optionally fanned out over row chunks.
    if work >= PAR_MATMUL_MIN_WORK && m >= 2 && threads > 1 {
        // About 4 chunks per thread so the work-sharing cursor can even
        // out stragglers; chunk boundaries align to whole rows.
        let rows_per = m.div_ceil(4 * threads).max(1);
        pool::parallel_for_chunks(out, rows_per * n, |offset, chunk| {
            let first_row = offset / n;
            for (ri, out_row) in chunk.chunks_mut(n).enumerate() {
                let row = first_row + ri;
                scalar_row_into(&a[row * k..(row + 1) * k], b, n, out_row);
            }
        });
    } else {
        for (i, out_row) in out.chunks_mut(n).enumerate() {
            scalar_row_into(&a[i * k..(i + 1) * k], b, n, out_row);
        }
    }
}

/// Smallest multiple of `step` that is `>= x`.
fn next_multiple(x: usize, step: usize) -> usize {
    x.div_ceil(step) * step
}

std::thread_local! {
    /// Reusable packed-B buffer. Packing happens on the calling thread
    /// before any fan-out, and `matmul_into` is not reentrant, so one
    /// scratch per thread suffices.
    static PACK_SCRATCH: std::cell::RefCell<Vec<f32>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// Packs `b[k, n]` into column panels of width [`NR`]: panel `p` stores,
/// for `kk = 0..k`, the (up to) NR values `b[kk][p*NR ..]` contiguously,
/// so the micro-kernel's k loop walks one dense stream per panel.
fn pack_b(b: &[f32], k: usize, n: usize, packed: &mut Vec<f32>) {
    packed.clear();
    packed.reserve(k * n);
    let mut j0 = 0;
    while j0 < n {
        let w = NR.min(n - j0);
        for kk in 0..k {
            packed.extend_from_slice(&b[kk * n + j0..kk * n + j0 + w]);
        }
        j0 += w;
    }
}

/// Runs the blocked kernel over a band of `a` rows (`a.len() / k` rows),
/// writing the matching rows of the output, with SIMD dispatch.
fn blocked_rows(a: &[f32], m: usize, k: usize, packed: &[f32], n: usize, out: &mut [f32]) {
    match simd_level() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `simd_level()` only reports Avx512 when
        // `is_x86_feature_detected!("avx512f")` returned true on this
        // host, so the target-feature contract of the wrapper holds.
        SimdLevel::Avx512 => unsafe { blocked_rows_avx512(a, m, k, packed, n, out) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as above — Avx2 is only reported when
        // `is_x86_feature_detected!("avx2")` returned true.
        SimdLevel::Avx2 => unsafe { blocked_rows_avx2(a, m, k, packed, n, out) },
        _ => blocked_rows_impl(a, m, k, packed, n, out),
    }
}

/// AVX-512F instantiation of [`blocked_rows_impl`].
///
/// # Safety
/// Callers must have verified `avx512f` support on the running CPU
/// (see [`simd_level`]); the body itself contains no `unsafe` operations.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
// SAFETY: `unsafe fn` purely for the target-feature contract restated in
// `# Safety` above; the body performs no unsafe operations.
unsafe fn blocked_rows_avx512(a: &[f32], m: usize, k: usize, packed: &[f32], n: usize, out: &mut [f32]) {
    blocked_rows_impl(a, m, k, packed, n, out)
}

/// AVX2 instantiation of [`blocked_rows_impl`].
///
/// # Safety
/// Callers must have verified `avx2` support on the running CPU
/// (see [`simd_level`]); the body itself contains no `unsafe` operations.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
// SAFETY: `unsafe fn` purely for the target-feature contract restated in
// `# Safety` above; the body performs no unsafe operations.
unsafe fn blocked_rows_avx2(a: &[f32], m: usize, k: usize, packed: &[f32], n: usize, out: &mut [f32]) {
    blocked_rows_impl(a, m, k, packed, n, out)
}

/// Blocked-kernel body, shared by the scalar and `target_feature`
/// instantiations (which differ only in what the compiler may vectorize).
#[inline(always)]
fn blocked_rows_impl(a: &[f32], m: usize, k: usize, packed: &[f32], n: usize, out: &mut [f32]) {
    let mut j0 = 0;
    let mut poff = 0;
    while j0 < n {
        let w = NR.min(n - j0);
        let panel = &packed[poff..poff + k * w];
        let mut i0 = 0;
        while i0 < m {
            let mr = MR.min(m - i0);
            if mr == MR && w == NR {
                microkernel_full(&a[i0 * k..], k, panel, &mut out[i0 * n + j0..], n);
            } else {
                microkernel_edge(&a[i0 * k..], k, panel, w, mr, &mut out[i0 * n + j0..], n);
            }
            i0 += mr;
        }
        poff += k * w;
        j0 += w;
    }
}

/// Full `MR x NR` register tile: accumulates `MR` output rows against one
/// packed panel. `acc[i][j]` sums cell `(i0+i, j0+j)` in strict k order —
/// the same association as the scalar reference.
#[inline(always)]
fn microkernel_full(a: &[f32], k: usize, panel: &[f32], out: &mut [f32], ldo: usize) {
    let mut acc = [[0f32; NR]; MR];
    for kk in 0..k {
        let bvals: &[f32; NR] = panel[kk * NR..kk * NR + NR].try_into().expect("panel width");
        for i in 0..MR {
            let a_ik = a[i * k + kk];
            for j in 0..NR {
                acc[i][j] += a_ik * bvals[j];
            }
        }
    }
    for i in 0..MR {
        out[i * ldo..i * ldo + NR].copy_from_slice(&acc[i]);
    }
}

/// Ragged tile (fewer than `MR` rows and/or a panel narrower than `NR`):
/// per-row accumulator, same strict per-cell k order.
#[inline(always)]
fn microkernel_edge(
    a: &[f32],
    k: usize,
    panel: &[f32],
    w: usize,
    mr: usize,
    out: &mut [f32],
    ldo: usize,
) {
    for i in 0..mr {
        let mut acc = [0f32; NR];
        for kk in 0..k {
            let a_ik = a[i * k + kk];
            let bvals = &panel[kk * w..kk * w + w];
            for (j, &bv) in bvals.iter().enumerate() {
                acc[j] += a_ik * bv;
            }
        }
        out[i * ldo..i * ldo + w].copy_from_slice(&acc[..w]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    fn naive(a: &[f32], m: usize, k: usize, b: &[f32], n: usize) -> Vec<f32> {
        let mut out = vec![0.0f32; m * n];
        for (i, out_row) in out.chunks_mut(n).enumerate() {
            scalar_row_into(&a[i * k..(i + 1) * k], b, n, out_row);
        }
        out
    }

    fn bits_eq(a: &[f32], b: &[f32]) -> bool {
        a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
    }

    #[test]
    fn blocked_matches_reference_bitwise_on_odd_shapes() {
        let mut rng = Rng::seed_from_u64(0xb10c);
        for &(m, k, n) in &[
            (4usize, 16usize, 16usize),
            (5, 7, 3),
            (13, 64, 130),
            (64, 33, 17),
            (37, 41, 129),
            (4, 1, 16),
            (6, 2, 40),
        ] {
            let a: Vec<f32> = (0..m * k).map(|_| rng.gen_range(-1.0..=1.0)).collect();
            let b: Vec<f32> = (0..k * n).map(|_| rng.gen_range(-1.0..=1.0)).collect();
            let want = naive(&a, m, k, &b, n);
            let mut packed = Vec::new();
            pack_b(&b, k, n, &mut packed);
            let mut got = vec![0.0f32; m * n];
            blocked_rows(&a, m, k, &packed, n, &mut got);
            assert!(bits_eq(&want, &got), "blocked differs at {m}x{k}x{n}");
        }
    }

    #[test]
    fn kernel_knob_roundtrips() {
        set_matmul_kernel(MatmulKernel::Reference);
        assert_eq!(matmul_kernel(), MatmulKernel::Reference);
        set_matmul_kernel(MatmulKernel::Auto);
        assert_eq!(matmul_kernel(), MatmulKernel::Auto);
    }
}
