//! Finite-difference gradient checking used by the test suites of this
//! crate and the layer crate.
//!
//! [`check_input_gradient`] perturbs each element of an input tensor with a
//! central difference and compares against the analytic gradient produced by
//! [`crate::graph::Graph::backward`]. Tolerances are loose enough for `f32`
//! arithmetic but tight enough to catch any sign/indexing mistake.

use crate::graph::{Graph, NodeId};
use crate::tensor::Tensor;

/// Result of a gradient check: maximum absolute and relative deviation.
#[derive(Debug, Clone, Copy)]
pub struct GradCheckReport {
    /// Largest absolute difference between analytic and numeric gradient.
    pub max_abs_err: f32,
    /// Largest relative difference (normalized by magnitude, floored at 1).
    pub max_rel_err: f32,
}

impl GradCheckReport {
    /// Whether the check passes at the given relative tolerance.
    pub fn passes(&self, rel_tol: f32) -> bool {
        self.max_rel_err <= rel_tol
    }
}

/// Checks `d loss / d input` for a scalar-loss computation.
///
/// `build` receives a fresh graph and the gradient-tracked input node, and
/// must return the scalar loss node. It is invoked once per perturbed
/// element plus once for the analytic pass, so keep it small.
pub fn check_input_gradient(
    input: &Tensor,
    eps: f32,
    build: impl Fn(&mut Graph, NodeId) -> NodeId,
) -> GradCheckReport {
    // Analytic gradient.
    let mut g = Graph::new();
    let x = g.input(input.clone());
    let loss = build(&mut g, x);
    assert_eq!(g.value(loss).shape(), (1, 1), "gradcheck requires scalar loss");
    g.backward(loss);
    let analytic = g.grad(x).expect("input must receive a gradient").clone();

    let mut max_abs: f32 = 0.0;
    let mut max_rel: f32 = 0.0;
    for i in 0..input.len() {
        let mut plus = input.clone();
        plus.data_mut()[i] += eps;
        let mut minus = input.clone();
        minus.data_mut()[i] -= eps;

        let eval = |t: Tensor| {
            let mut g = Graph::new();
            let x = g.input(t);
            let loss = build(&mut g, x);
            g.value(loss).scalar()
        };
        let numeric = (eval(plus) - eval(minus)) / (2.0 * eps);
        let a = analytic.data()[i];
        let abs = (a - numeric).abs();
        let rel = abs / a.abs().max(numeric.abs()).max(1.0);
        max_abs = max_abs.max(abs);
        max_rel = max_rel.max(rel);
    }
    GradCheckReport { max_abs_err: max_abs, max_rel_err: max_rel }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    const EPS: f32 = 1e-2;
    const TOL: f32 = 2e-2;

    fn rand_t(rows: usize, cols: usize, seed: u64) -> Tensor {
        let mut rng = Rng::seed_from_u64(seed);
        Tensor::uniform(rows, cols, 1.0, &mut rng)
    }

    #[test]
    fn gradcheck_tanh_chain() {
        let x = rand_t(2, 3, 1);
        let report = check_input_gradient(&x, EPS, |g, x| {
            let t = g.tanh(x);
            let s = g.sigmoid(t);
            g.sum_all(s)
        });
        assert!(report.passes(TOL), "{report:?}");
    }

    #[test]
    fn gradcheck_matmul_left_and_right() {
        let x = rand_t(2, 3, 2);
        let w = rand_t(3, 2, 3);
        let report = check_input_gradient(&x, EPS, |g, x| {
            let w = g.leaf(w.clone());
            let y = g.matmul(x, w);
            let t = g.tanh(y);
            g.sum_all(t)
        });
        assert!(report.passes(TOL), "{report:?}");

        let x2 = rand_t(3, 2, 4);
        let a = rand_t(2, 3, 5);
        let report = check_input_gradient(&x2, EPS, |g, x| {
            let a = g.leaf(a.clone());
            let y = g.matmul(a, x);
            let t = g.sigmoid(y);
            g.sum_all(t)
        });
        assert!(report.passes(TOL), "{report:?}");
    }

    #[test]
    fn gradcheck_softmax_rows() {
        let x = rand_t(2, 4, 6);
        let weights = rand_t(2, 4, 7);
        let report = check_input_gradient(&x, 5e-3, |g, x| {
            let s = g.softmax_rows(x);
            let w = g.leaf(weights.clone());
            let m = g.mul(s, w);
            g.sum_all(m)
        });
        assert!(report.passes(TOL), "{report:?}");
    }

    #[test]
    fn gradcheck_log_softmax_nll() {
        let x = rand_t(3, 4, 8);
        let report = check_input_gradient(&x, 5e-3, |g, x| {
            let lp = g.log_softmax_rows(x);
            g.pick_nll(lp, vec![0, 2, 3])
        });
        assert!(report.passes(TOL), "{report:?}");
    }

    #[test]
    fn gradcheck_bce_with_logits() {
        let x = rand_t(1, 5, 9);
        let targets = Tensor::row_vector(&[1.0, 0.0, 1.0, 0.0, 1.0]);
        let report = check_input_gradient(&x, EPS, |g, x| {
            g.bce_with_logits(x, targets.clone())
        });
        assert!(report.passes(TOL), "{report:?}");
    }

    #[test]
    fn gradcheck_concat_and_slice() {
        let x = rand_t(3, 2, 10);
        let other = rand_t(2, 2, 11);
        let report = check_input_gradient(&x, EPS, |g, x| {
            let o = g.leaf(other.clone());
            let v = g.vcat(x, o);
            let s = g.row_slice(v, 1, 4);
            let t = g.tanh(s);
            g.sum_all(t)
        });
        assert!(report.passes(TOL), "{report:?}");

        let report = check_input_gradient(&x, EPS, |g, x| {
            let o = g.leaf(rand_t(3, 3, 12));
            let h = g.hcat(x, o);
            let t = g.sigmoid(h);
            g.sum_all(t)
        });
        assert!(report.passes(TOL), "{report:?}");
    }

    #[test]
    fn gradcheck_unfold_mean() {
        let x = rand_t(5, 2, 13);
        let proj = rand_t(6, 3, 14);
        let report = check_input_gradient(&x, EPS, |g, x| {
            let u = g.unfold(x, 3);
            let p = g.leaf(proj.clone());
            let y = g.matmul(u, p);
            let m = g.mean_rows(y);
            let t = g.tanh(m);
            g.sum_all(t)
        });
        assert!(report.passes(TOL), "{report:?}");
    }

    #[test]
    fn gradcheck_gather_repeat_rowops() {
        let x = rand_t(4, 3, 15);
        let report = check_input_gradient(&x, EPS, |g, x| {
            let picked = g.gather_rows(x, vec![1, 3, 1]);
            let m = g.mean_rows(picked);
            let r = g.repeat_rows(m, 2);
            let t = g.tanh(r);
            g.sum_all(t)
        });
        assert!(report.passes(TOL), "{report:?}");
    }

    #[test]
    fn gradcheck_row_broadcast_ops() {
        let x = rand_t(1, 4, 16);
        let base = rand_t(3, 4, 17);
        let report = check_input_gradient(&x, EPS, |g, x| {
            let b = g.leaf(base.clone());
            let y = g.add_row(b, x);
            let z = g.mul_row(y, x);
            let t = g.tanh(z);
            g.sum_all(t)
        });
        assert!(report.passes(TOL), "{report:?}");
    }

    #[test]
    fn gradcheck_sub_scale_transpose() {
        let x = rand_t(2, 3, 18);
        let other = rand_t(3, 2, 19);
        let report = check_input_gradient(&x, EPS, |g, x| {
            let t = g.transpose(x);
            let o = g.leaf(other.clone());
            let d = g.sub(t, o);
            let s = g.scale(d, 0.7);
            let sq = g.mul(s, s);
            g.sum_all(sq)
        });
        assert!(report.passes(TOL), "{report:?}");
    }

    #[test]
    fn gradcheck_relu() {
        // Shift away from zero so the kink doesn't break finite differences.
        let mut x = rand_t(2, 3, 20);
        for v in x.data_mut() {
            *v = if *v >= 0.0 { *v + 0.5 } else { *v - 0.5 };
        }
        let report = check_input_gradient(&x, 1e-3, |g, x| {
            let r = g.relu(x);
            let s = g.sum_all(r);
            g.scale(s, 0.5)
        });
        assert!(report.passes(TOL), "{report:?}");
    }

    #[test]
    fn gradcheck_exp_ln_chain() {
        let x = rand_t(2, 3, 22);
        let report = check_input_gradient(&x, 1e-3, |g, x| {
            let e = g.exp(x);
            let shifted = g.add_scalar(e, 1.0); // keep ln input positive
            let l = g.ln(shifted);
            g.sum_all(l)
        });
        assert!(report.passes(TOL), "{report:?}");
    }

    #[test]
    fn gradcheck_sum_rows_mean_rows() {
        let x = rand_t(3, 4, 21);
        let report = check_input_gradient(&x, EPS, |g, x| {
            let s = g.sum_rows(x);
            let m = g.mean_rows(x);
            let c = g.hcat(s, m);
            let t = g.tanh(c);
            g.sum_all(t)
        });
        assert!(report.passes(TOL), "{report:?}");
    }
}
