//! Dense 2-D `f32` tensor used throughout the NLIDB reproduction.
//!
//! All tensors are row-major matrices of shape `[rows, cols]`; vectors are
//! represented as single-row matrices `[1, n]`. This deliberately small
//! surface (no N-d shapes, no strides) keeps the autograd engine in
//! [`crate::graph`] simple and auditable while covering everything the
//! paper's models need: sequence models operate on `[time, dim]` matrices,
//! classifiers on `[1, dim]` rows.

use nlidb_json::{FromJson, Json, JsonError, ToJson};

use crate::matmul;
use crate::pool;
use crate::rng::Rng;

/// Minimum element count before [`Tensor::map`] / [`Tensor::zip`] fan out.
const PAR_ELEMWISE_MIN_LEN: usize = 16 * 1024;

/// A dense row-major matrix of `f32` values.
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Tensor { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates a tensor filled with the given value.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Tensor { rows, cols, data: vec![value; rows * cols] }
    }

    /// Creates a tensor from a flat row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "tensor data length {} does not match shape [{rows}, {cols}]",
            data.len()
        );
        Tensor { rows, cols, data }
    }

    /// Creates a `[1, n]` row vector from a slice.
    pub fn row_vector(values: &[f32]) -> Self {
        Tensor::from_vec(1, values.len(), values.to_vec())
    }

    /// Creates a tensor with entries drawn uniformly from `[-bound, bound]`.
    pub fn uniform(rows: usize, cols: usize, bound: f32, rng: &mut Rng) -> Self {
        let data = (0..rows * cols).map(|_| rng.gen_range(-bound..=bound)).collect();
        Tensor { rows, cols, data }
    }

    /// Xavier/Glorot uniform initialization for a `[fan_in, fan_out]` weight.
    pub fn xavier(rows: usize, cols: usize, rng: &mut Rng) -> Self {
        let bound = (6.0 / (rows + cols) as f32).sqrt();
        Self::uniform(rows, cols, bound, rng)
    }

    /// Xavier initialization with a caller-provided seed (convenience for tests).
    pub fn xavier_seeded(rows: usize, cols: usize, seed: u64) -> Self {
        let mut rng = Rng::seed_from_u64(seed);
        Self::xavier(rows, cols, &mut rng)
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Shape as a `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has zero elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the flat row-major buffer.
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the flat row-major buffer.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its flat row-major buffer (used by
    /// the graph arena to recycle allocations).
    #[inline]
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element mutator.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Immutable view of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix product `self @ other`.
    ///
    /// Dispatches through [`crate::matmul`]: a scalar i-k-j reference
    /// loop, a column-chunked single-row path for `[1, K]` products, and
    /// a cache-blocked packed-B kernel for larger shapes. All paths keep
    /// the per-output-cell reduction order of the scalar loop, so the
    /// result is bitwise identical regardless of kernel selection
    /// ([`crate::matmul::set_matmul_kernel`]) or thread count.
    ///
    /// Note there is deliberately *no* skip of zero left-hand entries:
    /// `0 * NaN` and `0 * Inf` must produce `NaN` so that divergence in
    /// one operand is never silently masked (IEEE-754 semantics); see
    /// [`Tensor::matmul_sparse_lhs`] for the opt-in sparse path.
    ///
    /// # Panics
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        let mut out = Tensor::zeros(self.rows, other.cols);
        self.matmul_into(other, &mut out);
        out
    }

    /// Computes `self @ other` into a caller-provided (zeroed) output
    /// tensor; [`Tensor::matmul`] over a reused buffer.
    ///
    /// # Panics
    /// Panics on inner-dimension mismatch or wrong `out` shape.
    pub fn matmul_into(&self, other: &Tensor, out: &mut Tensor) {
        assert_eq!(
            self.cols, other.rows,
            "matmul shape mismatch: [{}, {}] @ [{}, {}]",
            self.rows, self.cols, other.rows, other.cols
        );
        assert_eq!(
            out.shape(),
            (self.rows, other.cols),
            "matmul_into output shape mismatch"
        );
        matmul::matmul_into(
            &self.data,
            self.rows,
            self.cols,
            &other.data,
            other.cols,
            &mut out.data,
        );
    }

    /// Matrix product that skips zero entries of `self` (the left operand).
    ///
    /// This is the former fast path of [`Tensor::matmul`], now explicit:
    /// it is only valid when `other` is known to be finite (checked by a
    /// debug assertion), because a skipped `0 * NaN` / `0 * Inf` yields
    /// `0` instead of `NaN`. Use it for genuinely sparse left operands
    /// (indicator/one-hot matrices). On finite inputs the result is
    /// bitwise identical to [`Tensor::matmul`]: a skipped term is a
    /// `±0.0` product, and adding `±0.0` to a `+0.0`-initialized
    /// accumulator (which IEEE-754 addition can never turn into `-0.0`)
    /// leaves its bits unchanged.
    ///
    /// # Panics
    /// Panics on inner-dimension mismatch. Debug builds panic when
    /// `other` contains non-finite values.
    pub fn matmul_sparse_lhs(&self, other: &Tensor) -> Tensor {
        assert_eq!(
            self.cols, other.rows,
            "matmul shape mismatch: [{}, {}] @ [{}, {}]",
            self.rows, self.cols, other.rows, other.cols
        );
        debug_assert!(
            other.all_finite(),
            "matmul_sparse_lhs requires a finite right operand: skipped \
             zero entries would silently turn 0 * NaN / 0 * Inf into 0"
        );
        let mut out = Tensor::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            let out_row = out.row_mut(i);
            for (k, &a_ik) in self.row(i).iter().enumerate() {
                if a_ik == 0.0 {
                    continue;
                }
                let b_row = other.row(k);
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a_ik * b;
                }
            }
        }
        out
    }

    /// Transpose.
    pub fn transpose(&self) -> Tensor {
        let mut out = Tensor::zeros(self.cols, self.rows);
        self.transpose_into(&mut out);
        out
    }

    /// Transpose into a caller-provided `[cols, rows]` output tensor
    /// ([`Tensor::transpose`] over a reused buffer). Every element of
    /// `out` is overwritten.
    ///
    /// # Panics
    /// Panics if `out` is not `[cols, rows]`.
    pub fn transpose_into(&self, out: &mut Tensor) {
        assert_eq!(out.shape(), (self.cols, self.rows), "transpose_into shape mismatch");
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.set(c, r, self.get(r, c));
            }
        }
    }

    /// Elementwise map. Large tensors fan out over disjoint chunks via
    /// [`crate::pool`]; per-element results are position-independent, so
    /// the parallel output is bitwise identical to the serial one.
    pub fn map(&self, f: impl Fn(f32) -> f32 + Sync) -> Tensor {
        let mut out = Tensor::zeros(self.rows, self.cols);
        self.map_into(f, &mut out);
        out
    }

    /// [`Tensor::map`] into a caller-provided same-shape output tensor
    /// (used by the graph arena to recycle buffers). Every element of
    /// `out` is overwritten; same parallel dispatch and bitwise contract
    /// as [`Tensor::map`].
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn map_into(&self, f: impl Fn(f32) -> f32 + Sync, out: &mut Tensor) {
        assert_eq!(self.shape(), out.shape(), "map_into shape mismatch");
        if self.data.len() >= PAR_ELEMWISE_MIN_LEN && pool::num_threads() > 1 {
            let chunk = self.data.len().div_ceil(pool::num_threads());
            let src = &self.data;
            pool::parallel_for_chunks(&mut out.data, chunk, |offset, part| {
                for (j, o) in part.iter_mut().enumerate() {
                    *o = f(src[offset + j]);
                }
            });
        } else {
            for (o, &x) in out.data.iter_mut().zip(&self.data) {
                *o = f(x);
            }
        }
    }

    /// Elementwise binary combination with shape assertion. Parallelized
    /// like [`Tensor::map`] with the same bitwise-determinism contract.
    pub fn zip(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32 + Sync) -> Tensor {
        let mut out = Tensor::zeros(self.rows, self.cols);
        self.zip_into(other, f, &mut out);
        out
    }

    /// [`Tensor::zip`] into a caller-provided same-shape output tensor
    /// (used by the graph arena to recycle buffers). Every element of
    /// `out` is overwritten.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn zip_into(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32 + Sync, out: &mut Tensor) {
        assert_eq!(self.shape(), other.shape(), "elementwise shape mismatch");
        assert_eq!(self.shape(), out.shape(), "zip_into output shape mismatch");
        if self.data.len() >= PAR_ELEMWISE_MIN_LEN && pool::num_threads() > 1 {
            let chunk = self.data.len().div_ceil(pool::num_threads());
            let (a, b) = (&self.data, &other.data);
            pool::parallel_for_chunks(&mut out.data, chunk, |offset, part| {
                for (j, o) in part.iter_mut().enumerate() {
                    *o = f(a[offset + j], b[offset + j]);
                }
            });
        } else {
            for ((o, &a), &b) in out.data.iter_mut().zip(&self.data).zip(&other.data) {
                *o = f(a, b);
            }
        }
    }

    /// In-place `self += scale * other`.
    pub fn add_scaled(&mut self, other: &Tensor, scale: f32) {
        assert_eq!(self.shape(), other.shape(), "add_scaled shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += scale * b;
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Squared L2 norm of all elements.
    pub fn norm_sq(&self) -> f32 {
        self.data.iter().map(|&x| x * x).sum()
    }

    /// Squared L2 norm accumulated in `f64`.
    ///
    /// Overflow-safe: squares of values near `f32::MAX` overflow an `f32`
    /// accumulator to infinity, but fit comfortably in `f64` (used by
    /// global-norm gradient clipping).
    pub fn norm_sq_f64(&self) -> f64 {
        self.data.iter().map(|&x| x as f64 * x as f64).sum()
    }

    /// L2 norm of all elements.
    pub fn norm(&self) -> f32 {
        self.norm_sq().sqrt()
    }

    /// Lp norm of all elements (`p >= 1`); `p = 2.0` matches [`Tensor::norm`].
    pub fn norm_p(&self, p: f32) -> f32 {
        assert!(p >= 1.0, "norm_p requires p >= 1");
        if p == 2.0 {
            return self.norm();
        }
        if p == 1.0 {
            return self.data.iter().map(|x| x.abs()).sum();
        }
        self.data.iter().map(|x| x.abs().powf(p)).sum::<f32>().powf(1.0 / p)
    }

    /// The single scalar in a `[1, 1]` tensor.
    ///
    /// # Panics
    /// Panics if the tensor is not `[1, 1]`.
    pub fn scalar(&self) -> f32 {
        assert_eq!(self.shape(), (1, 1), "scalar() on non-[1,1] tensor");
        self.data[0]
    }

    /// Index of the maximum element in row `r`.
    pub fn argmax_row(&self, r: usize) -> usize {
        let row = self.row(r);
        let mut best = 0;
        for (i, &v) in row.iter().enumerate() {
            if v > row[best] {
                best = i;
            }
        }
        best
    }

    /// Vertical concatenation: stacks `other` below `self`.
    pub fn vcat(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.cols, other.cols, "vcat column mismatch");
        let mut data = Vec::with_capacity(self.data.len() + other.data.len());
        data.extend_from_slice(&self.data);
        data.extend_from_slice(&other.data);
        Tensor { rows: self.rows + other.rows, cols: self.cols, data }
    }

    /// Horizontal concatenation: places `other` to the right of `self`.
    pub fn hcat(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.rows, other.rows, "hcat row mismatch");
        let cols = self.cols + other.cols;
        let mut data = Vec::with_capacity(self.rows * cols);
        for r in 0..self.rows {
            data.extend_from_slice(self.row(r));
            data.extend_from_slice(other.row(r));
        }
        Tensor { rows: self.rows, cols, data }
    }

    /// Returns true if every element is finite.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }
}

impl ToJson for Tensor {
    fn to_json(&self) -> Json {
        Json::obj([
            ("rows", self.rows.to_json()),
            ("cols", self.cols.to_json()),
            ("data", self.data.to_json()),
        ])
    }
}

impl FromJson for Tensor {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        let rows: usize = j.req("rows")?;
        let cols: usize = j.req("cols")?;
        let data: Vec<f32> = j.req("data")?;
        if data.len() != rows * cols {
            return Err(JsonError::new(format!(
                "tensor data length {} does not match shape [{rows}, {cols}]",
                data.len()
            )));
        }
        Ok(Tensor { rows, cols, data })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_shape_and_content() {
        let t = Tensor::zeros(2, 3);
        assert_eq!(t.shape(), (2, 3));
        assert!(t.data().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn from_vec_roundtrip() {
        let t = Tensor::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(t.get(0, 1), 2.0);
        assert_eq!(t.get(1, 0), 3.0);
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn from_vec_length_mismatch_panics() {
        let _ = Tensor::from_vec(2, 2, vec![1.0]);
    }

    #[test]
    fn matmul_known_values() {
        let a = Tensor::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Tensor::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), (2, 2));
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_propagates_nan_and_inf_through_zero_lhs() {
        // Regression: the old kernel skipped `a_ik == 0.0`, silently
        // turning `0 * NaN` / `0 * Inf` into `0` and masking divergence
        // in the right operand during training.
        let a = Tensor::from_vec(1, 2, vec![0.0, 1.0]);
        let b = Tensor::from_vec(2, 2, vec![f32::NAN, 1.0, 2.0, 3.0]);
        let c = a.matmul(&b);
        assert!(c.get(0, 0).is_nan(), "0 * NaN must propagate as NaN");
        assert_eq!(c.get(0, 1), 3.0);

        let b = Tensor::from_vec(2, 1, vec![f32::INFINITY, 5.0]);
        let c = a.matmul(&b);
        assert!(c.get(0, 0).is_nan(), "0 * Inf must propagate as NaN");
    }

    #[test]
    fn matmul_sparse_lhs_matches_dense_on_finite_inputs() {
        let a = Tensor::from_vec(2, 3, vec![0.0, 2.0, 0.0, 1.0, 0.0, 3.0]);
        let b = Tensor::from_vec(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.matmul_sparse_lhs(&b), a.matmul(&b));
    }

    #[test]
    fn norm_sq_f64_survives_values_near_f32_max() {
        let t = Tensor::row_vector(&[3.0e38, 3.0e38]);
        assert!(t.norm_sq().is_infinite(), "f32 accumulator overflows");
        let sq = t.norm_sq_f64();
        assert!(sq.is_finite());
        assert!((sq - 2.0 * 9.0e76).abs() / sq < 1e-6);
    }

    #[test]
    fn matmul_identity() {
        let a = Tensor::from_vec(2, 2, vec![3.0, -1.0, 0.5, 2.0]);
        let i = Tensor::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0]);
        assert_eq!(a.matmul(&i), a);
    }

    #[test]
    fn transpose_involution() {
        let a = Tensor::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().get(2, 1), 6.0);
    }

    #[test]
    fn row_views() {
        let a = Tensor::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.row(1), &[4.0, 5.0, 6.0]);
    }

    #[test]
    fn concat_shapes() {
        let a = Tensor::zeros(2, 3);
        let b = Tensor::zeros(1, 3);
        assert_eq!(a.vcat(&b).shape(), (3, 3));
        let c = Tensor::zeros(2, 4);
        assert_eq!(a.hcat(&c).shape(), (2, 7));
    }

    #[test]
    fn hcat_interleaves_rows() {
        let a = Tensor::from_vec(2, 1, vec![1.0, 2.0]);
        let b = Tensor::from_vec(2, 1, vec![3.0, 4.0]);
        assert_eq!(a.hcat(&b).data(), &[1.0, 3.0, 2.0, 4.0]);
    }

    #[test]
    fn norms() {
        let t = Tensor::row_vector(&[3.0, 4.0]);
        assert!((t.norm() - 5.0).abs() < 1e-6);
        assert!((t.norm_p(1.0) - 7.0).abs() < 1e-6);
        assert!((t.norm_p(2.0) - 5.0).abs() < 1e-6);
    }

    #[test]
    fn argmax_row_picks_first_max() {
        let t = Tensor::from_vec(1, 4, vec![0.1, 0.9, 0.9, 0.2]);
        assert_eq!(t.argmax_row(0), 1);
    }

    #[test]
    fn xavier_is_seeded_deterministic() {
        let a = Tensor::xavier_seeded(4, 4, 7);
        let b = Tensor::xavier_seeded(4, 4, 7);
        assert_eq!(a, b);
        let c = Tensor::xavier_seeded(4, 4, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn json_roundtrip_preserves_shape_and_data() {
        let t = Tensor::from_vec(2, 2, vec![1.5, -2.0, 0.1, 0.0]);
        let restored = Tensor::from_json(&t.to_json()).unwrap();
        assert_eq!(restored, t);
        let bad = nlidb_json::Json::parse(r#"{"rows":2,"cols":2,"data":[1.0]}"#).unwrap();
        assert!(Tensor::from_json(&bad).is_err());
    }

    #[test]
    fn add_scaled_accumulates() {
        let mut a = Tensor::row_vector(&[1.0, 1.0]);
        let b = Tensor::row_vector(&[2.0, 4.0]);
        a.add_scaled(&b, 0.5);
        assert_eq!(a.data(), &[2.0, 3.0]);
    }
}
