//! Property-based tests for the autograd engine: algebraic identities of
//! tensor ops and gradient-correctness over random graphs.

use proptest::prelude::*;

use nlidb_tensor::gradcheck::check_input_gradient;
use nlidb_tensor::{Graph, Tensor};

fn arb_tensor(rows: usize, cols: usize) -> impl Strategy<Value = Tensor> {
    prop::collection::vec(-2.0f32..2.0, rows * cols)
        .prop_map(move |data| Tensor::from_vec(rows, cols, data))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn matmul_identity_left_and_right(a in arb_tensor(3, 3)) {
        let mut id = Tensor::zeros(3, 3);
        for i in 0..3 {
            id.set(i, i, 1.0);
        }
        prop_assert_eq!(&a.matmul(&id), &a);
        prop_assert_eq!(&id.matmul(&a), &a);
    }

    #[test]
    fn matmul_distributes_over_addition(
        a in arb_tensor(2, 3),
        b in arb_tensor(3, 2),
        c in arb_tensor(3, 2),
    ) {
        // a(b + c) == ab + ac (within f32 tolerance)
        let bc = b.zip(&c, |x, y| x + y);
        let left = a.matmul(&bc);
        let right = {
            let ab = a.matmul(&b);
            let ac = a.matmul(&c);
            ab.zip(&ac, |x, y| x + y)
        };
        for (l, r) in left.data().iter().zip(right.data()) {
            prop_assert!((l - r).abs() < 1e-4, "{l} vs {r}");
        }
    }

    #[test]
    fn transpose_preserves_norm(a in arb_tensor(3, 4)) {
        prop_assert!((a.norm() - a.transpose().norm()).abs() < 1e-5);
    }

    #[test]
    fn softmax_rows_are_distributions(a in arb_tensor(3, 5)) {
        let mut g = Graph::new();
        let x = g.leaf(a);
        let s = g.softmax_rows(x);
        let v = g.value(s);
        for r in 0..v.rows() {
            let sum: f32 = v.row(r).iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-5);
            prop_assert!(v.row(r).iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
    }

    #[test]
    fn add_commutes_and_scale_distributes(a in arb_tensor(2, 4), b in arb_tensor(2, 4), s in -3.0f32..3.0) {
        let mut g = Graph::new();
        let an = g.leaf(a.clone());
        let bn = g.leaf(b.clone());
        let ab = g.add(an, bn);
        let ba = g.add(bn, an);
        prop_assert_eq!(g.value(ab), g.value(ba));
        let sab = g.scale(ab, s);
        let sa = g.scale(an, s);
        let sb = g.scale(bn, s);
        let sab2 = g.add(sa, sb);
        for (x, y) in g.value(sab).data().iter().zip(g.value(sab2).data()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn gradients_match_finite_differences_on_random_graphs(
        x in arb_tensor(2, 3),
        w in arb_tensor(3, 3),
    ) {
        // loss = sum(tanh(x @ w) * sigmoid(x))-ish composite
        let report = check_input_gradient(&x, 1e-2, |g, xn| {
            let wn = g.leaf(w.clone());
            let y = g.matmul(xn, wn);
            let t = g.tanh(y);
            let s = g.sigmoid(xn);
            let m = g.mul(t, s);
            g.sum_all(m)
        });
        prop_assert!(report.passes(0.05), "{report:?}");
    }

    #[test]
    fn backward_is_deterministic(x in arb_tensor(2, 2)) {
        let run = || {
            let mut g = Graph::new();
            let xn = g.input(x.clone());
            let t = g.tanh(xn);
            let loss = g.sum_all(t);
            g.backward(loss);
            g.grad(xn).unwrap().clone()
        };
        prop_assert_eq!(run(), run());
    }

    #[test]
    fn exp_ln_inverse_on_positive(x in prop::collection::vec(0.1f32..5.0, 6)) {
        let t = Tensor::from_vec(2, 3, x);
        let mut g = Graph::new();
        let xn = g.leaf(t.clone());
        let l = g.ln(xn);
        let e = g.exp(l);
        for (a, b) in g.value(e).data().iter().zip(t.data()) {
            prop_assert!((a - b).abs() < 1e-4);
        }
    }
}
