//! Property-based tests for the autograd engine: algebraic identities of
//! tensor ops and gradient-correctness over random graphs.
//!
//! Each property is checked over many cases drawn from the workspace PRNG
//! (`nlidb_tensor::Rng`) with a fixed seed, so failures are exactly
//! reproducible from the case index alone.

use nlidb_tensor::gradcheck::check_input_gradient;
use nlidb_tensor::{pool, set_matmul_kernel, GateAct, Graph, MatmulKernel, NodeId, Rng, Tensor};

const CASES: u64 = 64;

/// Serializes tests that flip the global pool size. Safe either way —
/// every parallel op is bitwise equal to serial by contract — but holding
/// the lock keeps each test actually exercising the mode it names.
fn pool_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// True bitwise equality (distinguishes `-0.0` from `0.0`, equates NaN
/// payloads only when identical).
fn bitwise_eq(a: &Tensor, b: &Tensor) -> bool {
    a.shape() == b.shape()
        && a.data().iter().map(|x| x.to_bits()).eq(b.data().iter().map(|x| x.to_bits()))
}

/// One deterministic generator per (test, case) pair.
fn case_rng(test_seed: u64, case: u64) -> Rng {
    Rng::seed_from_u64(test_seed.wrapping_mul(0x100000001b3) ^ case)
}

fn arb_tensor(rng: &mut Rng, rows: usize, cols: usize) -> Tensor {
    let data = (0..rows * cols).map(|_| rng.gen_range(-2.0f32..2.0)).collect();
    Tensor::from_vec(rows, cols, data)
}

#[test]
fn matmul_identity_left_and_right() {
    for case in 0..CASES {
        let mut rng = case_rng(1, case);
        let a = arb_tensor(&mut rng, 3, 3);
        let mut id = Tensor::zeros(3, 3);
        for i in 0..3 {
            id.set(i, i, 1.0);
        }
        assert_eq!(&a.matmul(&id), &a, "case {case}");
        assert_eq!(&id.matmul(&a), &a, "case {case}");
    }
}

#[test]
fn matmul_distributes_over_addition() {
    for case in 0..CASES {
        let mut rng = case_rng(2, case);
        let a = arb_tensor(&mut rng, 2, 3);
        let b = arb_tensor(&mut rng, 3, 2);
        let c = arb_tensor(&mut rng, 3, 2);
        // a(b + c) == ab + ac (within f32 tolerance)
        let bc = b.zip(&c, |x, y| x + y);
        let left = a.matmul(&bc);
        let right = {
            let ab = a.matmul(&b);
            let ac = a.matmul(&c);
            ab.zip(&ac, |x, y| x + y)
        };
        for (l, r) in left.data().iter().zip(right.data()) {
            assert!((l - r).abs() < 1e-4, "case {case}: {l} vs {r}");
        }
    }
}

#[test]
fn transpose_preserves_norm() {
    for case in 0..CASES {
        let mut rng = case_rng(3, case);
        let a = arb_tensor(&mut rng, 3, 4);
        assert!((a.norm() - a.transpose().norm()).abs() < 1e-5, "case {case}");
    }
}

#[test]
fn softmax_rows_are_distributions() {
    for case in 0..CASES {
        let mut rng = case_rng(4, case);
        let a = arb_tensor(&mut rng, 3, 5);
        let mut g = Graph::new();
        let x = g.leaf(a);
        let s = g.softmax_rows(x);
        let v = g.value(s);
        for r in 0..v.rows() {
            let sum: f32 = v.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-5, "case {case}");
            assert!(v.row(r).iter().all(|&p| (0.0..=1.0).contains(&p)), "case {case}");
        }
    }
}

#[test]
fn add_commutes_and_scale_distributes() {
    for case in 0..CASES {
        let mut rng = case_rng(5, case);
        let a = arb_tensor(&mut rng, 2, 4);
        let b = arb_tensor(&mut rng, 2, 4);
        let s = rng.gen_range(-3.0f32..3.0);
        let mut g = Graph::new();
        let an = g.leaf(a.clone());
        let bn = g.leaf(b.clone());
        let ab = g.add(an, bn);
        let ba = g.add(bn, an);
        assert_eq!(g.value(ab), g.value(ba), "case {case}");
        let sab = g.scale(ab, s);
        let sa = g.scale(an, s);
        let sb = g.scale(bn, s);
        let sab2 = g.add(sa, sb);
        for (x, y) in g.value(sab).data().iter().zip(g.value(sab2).data()) {
            assert!((x - y).abs() < 1e-4, "case {case}");
        }
    }
}

#[test]
fn gradients_match_finite_differences_on_random_graphs() {
    for case in 0..CASES {
        let mut rng = case_rng(6, case);
        let x = arb_tensor(&mut rng, 2, 3);
        let w = arb_tensor(&mut rng, 3, 3);
        // loss = sum(tanh(x @ w) * sigmoid(x))-ish composite
        let report = check_input_gradient(&x, 1e-2, |g, xn| {
            let wn = g.leaf(w.clone());
            let y = g.matmul(xn, wn);
            let t = g.tanh(y);
            let s = g.sigmoid(xn);
            let m = g.mul(t, s);
            g.sum_all(m)
        });
        assert!(report.passes(0.05), "case {case}: {report:?}");
    }
}

#[test]
fn backward_is_deterministic() {
    for case in 0..CASES {
        let mut rng = case_rng(7, case);
        let x = arb_tensor(&mut rng, 2, 2);
        let run = || {
            let mut g = Graph::new();
            let xn = g.input(x.clone());
            let t = g.tanh(xn);
            let loss = g.sum_all(t);
            g.backward(loss);
            g.grad(xn).unwrap().clone()
        };
        assert_eq!(run(), run(), "case {case}");
    }
}

#[test]
fn parallel_matmul_is_bitwise_equal_to_serial() {
    let _guard = pool_lock();
    // Fewer cases than CASES: each case multiplies matrices large enough
    // to cross the fan-out threshold.
    for case in 0..8 {
        let mut rng = case_rng(9, case);
        let m = rng.gen_range(48..160usize);
        let k = rng.gen_range(48..160usize);
        let n = rng.gen_range(48..160usize);
        let a = arb_tensor(&mut rng, m, k);
        let b = arb_tensor(&mut rng, k, n);
        pool::set_threads(1);
        let serial = a.matmul(&b);
        for threads in [2, 4, 7] {
            pool::set_threads(threads);
            let parallel = a.matmul(&b);
            assert!(
                bitwise_eq(&serial, &parallel),
                "case {case}: {threads}-thread matmul differs from serial"
            );
        }
    }
    pool::set_threads(pool::default_threads());
}

#[test]
fn parallel_map_zip_are_bitwise_equal_to_serial() {
    let _guard = pool_lock();
    for case in 0..8 {
        let mut rng = case_rng(10, case);
        let rows = rng.gen_range(64..256usize);
        let cols = rng.gen_range(80..256usize);
        let a = arb_tensor(&mut rng, rows, cols);
        let b = arb_tensor(&mut rng, rows, cols);
        pool::set_threads(1);
        let map_serial = a.map(|x| (x * 1.3).tanh());
        let zip_serial = a.zip(&b, |x, y| x * y + 0.25 * x);
        pool::set_threads(4);
        let map_parallel = a.map(|x| (x * 1.3).tanh());
        let zip_parallel = a.zip(&b, |x, y| x * y + 0.25 * x);
        assert!(bitwise_eq(&map_serial, &map_parallel), "case {case}: map differs");
        assert!(bitwise_eq(&zip_serial, &zip_parallel), "case {case}: zip differs");
    }
    pool::set_threads(pool::default_threads());
}

#[test]
fn parallel_backward_is_bitwise_equal_to_serial() {
    let _guard = pool_lock();
    for case in 0..6 {
        let mut rng = case_rng(11, case);
        let m = rng.gen_range(48..128usize);
        let k = rng.gen_range(48..128usize);
        let n = rng.gen_range(48..128usize);
        let a = arb_tensor(&mut rng, m, k);
        let b = arb_tensor(&mut rng, k, n);
        let run = || {
            let mut g = Graph::new();
            let an = g.input(a.clone());
            let bn = g.input(b.clone());
            let c = g.matmul(an, bn);
            let t = g.tanh(c);
            let loss = g.sum_all(t);
            g.backward(loss);
            (g.grad(an).unwrap().clone(), g.grad(bn).unwrap().clone())
        };
        pool::set_threads(1);
        let (da_s, db_s) = run();
        for threads in [2, 5] {
            pool::set_threads(threads);
            let (da_p, db_p) = run();
            assert!(
                bitwise_eq(&da_s, &da_p) && bitwise_eq(&db_s, &db_p),
                "case {case}: {threads}-thread backward differs from serial"
            );
        }
    }
    pool::set_threads(pool::default_threads());
}

/// Restores the global kernel knob (and pool size) on drop so a failing
/// assertion cannot leak `Reference` mode into sibling tests.
struct KernelGuard {
    _pool: std::sync::MutexGuard<'static, ()>,
}

impl KernelGuard {
    fn new() -> Self {
        KernelGuard { _pool: pool_lock() }
    }
}

impl Drop for KernelGuard {
    fn drop(&mut self) {
        set_matmul_kernel(MatmulKernel::Auto);
        pool::set_threads(pool::default_threads());
    }
}

#[test]
fn blocked_matmul_matches_reference_kernel_on_odd_shapes() {
    let _guard = KernelGuard::new();
    // Shapes chosen to hit every dispatch edge: single row (1×K), single
    // column (K×1), inner dim 1, non-multiple-of-tile dims straddling the
    // 4×16 microkernel, and sizes both below and above the blocked/parallel
    // work thresholds.
    let shapes: [(usize, usize, usize); 10] = [
        (1, 300, 777),
        (1, 512, 1024),
        (64, 80, 1),
        (97, 1, 33),
        (3, 5, 7),
        (4, 16, 16),
        (13, 64, 130),
        (37, 41, 129),
        (65, 33, 47),
        (96, 112, 80),
    ];
    for (case, &(m, k, n)) in shapes.iter().enumerate() {
        let mut rng = case_rng(12, case as u64);
        let a = arb_tensor(&mut rng, m, k);
        let b = arb_tensor(&mut rng, k, n);
        set_matmul_kernel(MatmulKernel::Reference);
        pool::set_threads(1);
        let reference = a.matmul(&b);
        set_matmul_kernel(MatmulKernel::Auto);
        for threads in [1, 2, 4, 7] {
            pool::set_threads(threads);
            let fast = a.matmul(&b);
            assert!(
                bitwise_eq(&reference, &fast),
                "case {case} ({m}x{k} @ {k}x{n}): blocked kernel at {threads} \
                 threads differs from the serial reference kernel"
            );
        }
    }
}

#[test]
fn single_row_matmul_parallelizes_bitwise_identically() {
    let _guard = KernelGuard::new();
    // Regression for the old `rows >= 2` fan-out guard: a 1×K @ K×V
    // product (the decoder's vocab projection — the hottest serving
    // shape) must engage the column-chunked parallel path and still be
    // bitwise equal to the serial reference.
    for case in 0..4 {
        let mut rng = case_rng(13, case);
        let k = rng.gen_range(256..640usize);
        let v = rng.gen_range(1024..2048usize);
        let a = arb_tensor(&mut rng, 1, k);
        let b = arb_tensor(&mut rng, k, v);
        set_matmul_kernel(MatmulKernel::Reference);
        pool::set_threads(1);
        let serial = a.matmul(&b);
        set_matmul_kernel(MatmulKernel::Auto);
        for threads in [2, 3, 8] {
            pool::set_threads(threads);
            let parallel = a.matmul(&b);
            assert!(
                bitwise_eq(&serial, &parallel),
                "case {case} (1x{k} @ {k}x{v}): {threads}-thread single-row \
                 matmul differs from serial"
            );
        }
    }
}

#[test]
fn matmul_sparse_lhs_matches_dense_at_blocked_sizes() {
    // The sparse-LHS path skips zero entries, which is only exact because
    // dense accumulation of `0.0 * finite` terms is also exact; this must
    // keep holding at sizes where the dense side takes the blocked kernel.
    for case in 0..8 {
        let mut rng = case_rng(14, case);
        let m = rng.gen_range(33..96usize);
        let k = rng.gen_range(33..96usize);
        let n = rng.gen_range(33..96usize);
        let data = (0..m * k)
            .map(|_| {
                if rng.gen_range(0.0f32..1.0) < 0.7 {
                    0.0
                } else {
                    rng.gen_range(-2.0f32..2.0)
                }
            })
            .collect();
        let a = Tensor::from_vec(m, k, data);
        let b = arb_tensor(&mut rng, k, n);
        assert!(
            bitwise_eq(&a.matmul_sparse_lhs(&b), &a.matmul(&b)),
            "case {case} ({m}x{k} @ {k}x{n}): sparse-LHS differs from dense"
        );
    }
}

/// Unfused composition of [`Graph::fused_gate`] (same as the one the
/// graph's own unit tests check against), usable at serving batch = 1.
fn gate_reference(
    g: &mut Graph,
    x: NodeId,
    wx: NodeId,
    h: NodeId,
    wh: NodeId,
    b: NodeId,
    act: GateAct,
) -> NodeId {
    let xw = g.matmul(x, wx);
    let hw = g.matmul(h, wh);
    let s = g.add(xw, hw);
    let lin = g.add(s, b);
    match act {
        GateAct::Sigmoid => g.sigmoid(lin),
        GateAct::Tanh => g.tanh(lin),
    }
}

#[test]
fn fused_gru_kernels_are_bitwise_stable_across_threads() {
    let _guard = KernelGuard::new();
    // Dims large enough that the gate matmuls cross the parallel-work
    // threshold, so the fused path is exercised with real fan-out.
    let (k, d) = (512, 640);
    let mut rng = case_rng(15, 0);
    let xs = arb_tensor(&mut rng, 1, k);
    let wxs = arb_tensor(&mut rng, k, d);
    let hs = arb_tensor(&mut rng, 1, d);
    let whs = arb_tensor(&mut rng, d, d);
    let bs = arb_tensor(&mut rng, 1, d);
    let run = |fused: bool| {
        let mut g = Graph::new();
        let x = g.input(xs.clone());
        let wx = g.input(wxs.clone());
        let h = g.input(hs.clone());
        let wh = g.input(whs.clone());
        let b = g.input(bs.clone());
        let z = if fused {
            g.fused_gate(x, wx, h, wh, b, GateAct::Sigmoid)
        } else {
            gate_reference(&mut g, x, wx, h, wh, b, GateAct::Sigmoid)
        };
        let n = if fused {
            g.fused_gate(x, wx, h, wh, b, GateAct::Tanh)
        } else {
            gate_reference(&mut g, x, wx, h, wh, b, GateAct::Tanh)
        };
        let out = if fused {
            g.fused_gru_combine(z, n, h)
        } else {
            let (rows, cols) = g.value(z).shape();
            let ones = g.leaf(Tensor::full(rows, cols, 1.0));
            let omz = g.sub(ones, z);
            let a = g.mul(omz, n);
            let b2 = g.mul(z, h);
            g.add(a, b2)
        };
        let loss = g.sum_all(out);
        g.backward(loss);
        (
            g.value(out).clone(),
            g.grad(x).unwrap().clone(),
            g.grad(wx).unwrap().clone(),
            g.grad(h).unwrap().clone(),
            g.grad(wh).unwrap().clone(),
            g.grad(b).unwrap().clone(),
        )
    };
    pool::set_threads(1);
    let fused_serial = run(true);
    let naive_serial = run(false);
    let tensors = |t: &(Tensor, Tensor, Tensor, Tensor, Tensor, Tensor)| {
        [&t.0, &t.1, &t.2, &t.3, &t.4, &t.5].map(Clone::clone)
    };
    for (i, (f, n)) in
        tensors(&fused_serial).iter().zip(tensors(&naive_serial).iter()).enumerate()
    {
        assert!(
            bitwise_eq(f, n),
            "tensor {i}: serial fused GRU kernel differs from the serial \
             unfused reference"
        );
    }
    for threads in [2, 4, 6] {
        pool::set_threads(threads);
        let fused_par = run(true);
        for (i, (f, n)) in
            tensors(&fused_par).iter().zip(tensors(&naive_serial).iter()).enumerate()
        {
            assert!(
                bitwise_eq(f, n),
                "tensor {i}: fused GRU kernel at {threads} threads differs \
                 from the serial unfused reference"
            );
        }
    }
}

#[test]
fn exp_ln_inverse_on_positive() {
    for case in 0..CASES {
        let mut rng = case_rng(8, case);
        let data: Vec<f32> = (0..6).map(|_| rng.gen_range(0.1f32..5.0)).collect();
        let t = Tensor::from_vec(2, 3, data);
        let mut g = Graph::new();
        let xn = g.leaf(t.clone());
        let l = g.ln(xn);
        let e = g.exp(l);
        for (a, b) in g.value(e).data().iter().zip(t.data()) {
            assert!((a - b).abs() < 1e-4, "case {case}");
        }
    }
}
