//! Shared harness for the serve integration suites: one tiny trained
//! system saved as a checkpoint (each test server loads its own copy),
//! plus a raw line-level TCP client so tests compare exact wire bytes
//! rather than decoded values.

#![allow(dead_code)] // each test binary uses its own subset

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard, OnceLock};

use nlidb_core::{ModelConfig, Nlidb, NlidbOptions};
use nlidb_data::wikisql::{generate, WikiSqlConfig};
use nlidb_json::{encode_frame, ToJson};
use nlidb_storage::Table;

/// The trained fixture every server under test serves with.
pub struct TestSystem {
    /// Checkpoint directory (`Nlidb::load` it per server under test, so
    /// concurrent servers never share a model instance).
    pub ckpt: PathBuf,
    /// Two distinct dev-split tables.
    pub tables: Vec<Table>,
    /// `(table index, question)` pairs drawn from the dev split.
    pub questions: Vec<(usize, Vec<String>)>,
}

/// Trains once per process, saves the checkpoint, and extracts a
/// two-table workload from the dev split.
pub fn system() -> &'static TestSystem {
    static SYS: OnceLock<TestSystem> = OnceLock::new();
    SYS.get_or_init(|| {
        let mut cfg = WikiSqlConfig::tiny(4242);
        cfg.train_tables = 8;
        cfg.questions_per_table = 6;
        let ds = generate(&cfg);
        let opts = NlidbOptions { model: ModelConfig::tiny(), ..NlidbOptions::default() };
        let nlidb = Nlidb::train(&ds, opts);
        let ckpt =
            std::env::temp_dir().join(format!("nlidb-serve-test-ckpt-{}", std::process::id()));
        nlidb.save(&ckpt).expect("save test checkpoint");

        let mut fps: Vec<u64> = Vec::new();
        let mut tables: Vec<Table> = Vec::new();
        let mut questions: Vec<(usize, Vec<String>)> = Vec::new();
        for e in &ds.dev {
            let fp = e.table.fingerprint();
            let idx = match fps.iter().position(|&f| f == fp) {
                Some(i) => i,
                None if tables.len() < 2 => {
                    fps.push(fp);
                    tables.push((*e.table).clone());
                    tables.len() - 1
                }
                None => continue,
            };
            if questions.len() < 12 {
                questions.push((idx, e.question.clone()));
            }
        }
        assert_eq!(tables.len(), 2, "dev split must yield two distinct tables");
        assert!(questions.len() >= 6, "dev split must yield enough questions");
        TestSystem { ckpt, tables, questions }
    })
}

/// Serializes tests that flip the global inference pool size.
pub fn pool_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// A line-level client: writes raw bytes, reads raw response lines.
pub struct RawClient {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl RawClient {
    pub fn connect(addr: impl ToSocketAddrs) -> RawClient {
        let stream = TcpStream::connect(addr).expect("connect to test server");
        let reader = BufReader::new(stream.try_clone().expect("clone stream"));
        RawClient { stream, reader }
    }

    pub fn send_bytes(&mut self, bytes: &[u8]) {
        self.stream.write_all(bytes).expect("write to test server");
        self.stream.flush().expect("flush to test server");
    }

    /// Sends one request frame; returns the raw response line (without
    /// its newline terminator).
    pub fn roundtrip(&mut self, req: &impl ToJson) -> String {
        self.send_bytes(encode_frame(&req.to_json()).as_bytes());
        self.recv_line()
    }

    pub fn recv_line(&mut self) -> String {
        self.try_recv_line().expect("server closed the connection unexpectedly")
    }

    /// Reads one response line; `None` on clean EOF.
    pub fn try_recv_line(&mut self) -> Option<String> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line).expect("read response line");
        if n == 0 {
            return None;
        }
        Some(line.trim_end_matches('\n').to_string())
    }
}
