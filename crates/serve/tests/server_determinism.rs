//! The wire-determinism replay harness (`docs/PROTOCOL.md` §5): a fixed
//! request log is replayed against fresh servers under different
//! inference thread counts, connection counts, and micro-batch timings,
//! and every response line must be **byte-identical** across all
//! configurations. Also pins hot-swap semantics: a swap never drops
//! in-flight requests, a failed swap keeps the old model serving, and a
//! swap back to the same checkpoint reproduces the same answer bytes.

mod common;

use std::time::Duration;

use common::{pool_lock, system, RawClient};
use nlidb_core::Nlidb;
use nlidb_json::{encode_frame, ToJson};
use nlidb_serve::{AskItem, Op, Reply, Request, Response, Server, ServerConfig};
use nlidb_tensor::pool;

/// The replay log. Requests carry their log index as `id`, so every
/// response body self-identifies and the comparison is order-proof.
/// Returns `(setup_len, log)`: the first `setup_len` entries are
/// registrations and must complete before the rest is replayed.
fn build_log() -> (usize, Vec<Request>) {
    let sys = system();
    let fps: Vec<u64> = sys.tables.iter().map(|t| t.fingerprint()).collect();
    let ask = |ti: usize, q: &[String]| {
        Op::Ask(AskItem { fingerprint: fps[ti], question: q.to_vec(), guided: false })
    };
    let ask_guided = |ti: usize, q: &[String]| {
        Op::Ask(AskItem { fingerprint: fps[ti], question: q.to_vec(), guided: true })
    };

    let mut log = vec![
        Request::new(0, "acme", Op::RegisterTable { table: sys.tables[0].clone() }),
        Request::new(1, "acme", Op::RegisterTable { table: sys.tables[1].clone() }),
    ];
    let setup_len = log.len();
    // Every question once…
    for (ti, q) in &sys.questions {
        log.push(Request::new(log.len() as i64, "acme", ask(*ti, q)));
    }
    // …then every other question again (cache-hit paths must yield the
    // same bytes as the original computation).
    for (ti, q) in sys.questions.iter().step_by(2) {
        log.push(Request::new(log.len() as i64, "acme", ask(*ti, q)));
    }
    // Mixed guided/unguided traffic: every third question again with
    // execution-guided decoding on — including questions already cached
    // unguided, so guided and unguided entries for the same
    // `(table, question)` must coexist and stay byte-stable.
    for (ti, q) in sys.questions.iter().step_by(3) {
        log.push(Request::new(log.len() as i64, "acme", ask_guided(*ti, q)));
    }
    // And a guided repeat (the guided cache-hit path).
    log.push(Request::new(
        log.len() as i64,
        "acme",
        ask_guided(sys.questions[0].0, &sys.questions[0].1),
    ));
    // A mixed batch spanning both tables plus a bogus fingerprint (the
    // per-item error path), with guided and unguided items side by side.
    log.push(Request::new(
        log.len() as i64,
        "acme",
        Op::Batch {
            items: vec![
                AskItem { fingerprint: fps[0], question: sys.questions[0].1.clone(), guided: false },
                AskItem { fingerprint: fps[0], question: sys.questions[0].1.clone(), guided: true },
                AskItem { fingerprint: fps[1], question: sys.questions[1].1.clone(), guided: true },
                AskItem { fingerprint: 0xdead_beef, question: vec!["nothing".into()], guided: false },
            ],
        },
    ));
    // Tenancy: a stranger asking acme's table is `unknown_table`.
    log.push(Request::new(log.len() as i64, "intruder", ask(0, &sys.questions[0].1)));
    (setup_len, log)
}

/// Replays the log against a fresh server: registrations first on one
/// connection, then the rest round-robined over `conns` concurrent
/// connections. Returns the raw response lines, indexed like the log.
fn run_replay(cfg: ServerConfig, conns: usize) -> Vec<String> {
    let sys = system();
    let nlidb = Nlidb::load(&sys.ckpt).expect("load test checkpoint");
    let server = Server::start(nlidb, cfg).expect("start test server");
    let addr = server.addr();
    let (setup_len, log) = build_log();

    let mut out: Vec<String> = vec![String::new(); log.len()];
    {
        let mut setup = RawClient::connect(addr);
        for (i, req) in log[..setup_len].iter().enumerate() {
            out[i] = setup.roundtrip(req);
        }
    }

    let framed: Vec<(usize, String)> = log[setup_len..]
        .iter()
        .enumerate()
        .map(|(k, r)| (setup_len + k, encode_frame(&r.to_json())))
        .collect();
    let results: Vec<(usize, String)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..conns)
            .map(|c| {
                let mine: Vec<(usize, String)> =
                    framed.iter().skip(c).step_by(conns).cloned().collect();
                s.spawn(move || {
                    let mut client = RawClient::connect(addr);
                    mine.into_iter()
                        .map(|(i, frame)| {
                            client.send_bytes(frame.as_bytes());
                            (i, client.recv_line())
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().expect("replay connection thread")).collect()
    });
    for (i, line) in results {
        out[i] = line;
    }
    server.shutdown();
    out
}

#[test]
fn replay_is_byte_identical_across_threads_connections_and_batching() {
    let _guard = pool_lock();
    let eager = ServerConfig {
        max_batch_questions: 1,
        linger: Duration::ZERO,
        ..ServerConfig::default()
    };
    let lingering = ServerConfig {
        max_batch_questions: 32,
        linger: Duration::from_millis(10),
        ..ServerConfig::default()
    };
    let mid = ServerConfig {
        max_batch_questions: 4,
        linger: Duration::from_millis(1),
        ..ServerConfig::default()
    };
    let runs: Vec<(&str, usize, usize, ServerConfig)> = vec![
        ("1 thread, 1 conn, batch=1", 1, 1, eager.clone()),
        ("N threads, 1 conn, batch=1", pool::default_threads(), 1, eager),
        ("1 thread, 4 conns, batch=32+linger", 1, 4, lingering),
        ("N threads, 3 conns, batch=4", pool::default_threads(), 3, mid),
    ];

    let mut outputs: Vec<(&str, Vec<String>)> = Vec::new();
    for (label, threads, conns, cfg) in runs {
        pool::set_threads(threads);
        outputs.push((label, run_replay(cfg, conns)));
    }
    pool::set_threads(pool::default_threads());

    let (ref_label, reference) = &outputs[0];
    // The log must be meaningful: real answers, a cache-hit region, the
    // per-item batch error, and the tenancy rejection all present.
    let answers = reference.iter().filter(|l| l.contains("\"type\":\"answer\"")).count();
    assert!(answers >= 6, "reference produced too few answers ({answers}) to mean much");
    assert!(
        reference.iter().any(|l| l.contains("\"type\":\"batch\"")
            && l.contains("\"error\":{\"code\":\"unknown_table\"")),
        "batch example must carry its per-item error"
    );
    assert!(
        reference.last().expect("nonempty log").contains("\"code\":\"unknown_table\""),
        "tenancy rejection missing from the log tail"
    );

    for (label, lines) in &outputs[1..] {
        assert_eq!(lines.len(), reference.len());
        for (i, (got, want)) in lines.iter().zip(reference).enumerate() {
            assert_eq!(
                got, want,
                "response {i} diverged between `{ref_label}` and `{label}`"
            );
        }
    }
}

#[test]
fn hot_swap_is_seamless_and_failed_swap_keeps_the_old_model() {
    let _guard = pool_lock();
    pool::set_threads(1);
    let sys = system();
    let nlidb = Nlidb::load(&sys.ckpt).expect("load test checkpoint");
    let server = Server::start(nlidb, ServerConfig::default()).expect("start test server");
    let mut c = RawClient::connect(server.addr());

    let reg = c.roundtrip(&Request::new(0, "acme", Op::RegisterTable {
        table: sys.tables[0].clone(),
    }));
    assert!(reg.contains("\"type\":\"registered\""), "{reg}");

    let ask = Request::new(
        1,
        "acme",
        Op::Ask(AskItem {
            fingerprint: sys.tables[0].fingerprint(),
            question: sys.questions[0].1.clone(),
            guided: false,
        }),
    );
    let before = c.roundtrip(&ask);
    assert!(before.contains("\"type\":\"answer\""), "{before}");

    // Swapping to the same checkpoint: same model, so the same request
    // must produce the same bytes (and the cache reset is invisible).
    let swapped = c.roundtrip(&Request::new(2, "ops", Op::SwapCheckpoint {
        path: sys.ckpt.display().to_string(),
    }));
    assert!(swapped.contains("\"type\":\"swapped\""), "{swapped}");
    assert_eq!(c.roundtrip(&ask), before, "answer changed across an identity swap");

    // A failed swap reports `checkpoint_failed` and changes nothing.
    let failed = c.roundtrip(&Request::new(3, "ops", Op::SwapCheckpoint {
        path: "/nonexistent/nlidb-checkpoint".into(),
    }));
    assert!(failed.contains("\"code\":\"checkpoint_failed\""), "{failed}");
    assert_eq!(c.roundtrip(&ask), before, "answer changed after a failed swap");

    let stats = c.roundtrip(&Request::new(4, "ops", Op::Stats));
    assert!(stats.contains("\"swaps\":1"), "exactly one successful swap: {stats}");

    let bye = c.roundtrip(&Request::new(5, "ops", Op::Shutdown));
    assert!(bye.contains("\"type\":\"bye\""), "{bye}");
    server.shutdown();
    pool::set_threads(pool::default_threads());
}

#[test]
fn swap_under_concurrent_load_drops_no_requests() {
    let _guard = pool_lock();
    let sys = system();
    let nlidb = Nlidb::load(&sys.ckpt).expect("load test checkpoint");
    let cfg = ServerConfig {
        max_batch_questions: 8,
        linger: Duration::from_millis(1),
        ..ServerConfig::default()
    };
    let server = Server::start(nlidb, cfg).expect("start test server");
    let addr = server.addr();

    let mut setup = RawClient::connect(addr);
    let reg = setup.roundtrip(&Request::new(0, "acme", Op::RegisterTable {
        table: sys.tables[0].clone(),
    }));
    assert!(reg.contains("\"type\":\"registered\""), "{reg}");
    let fp = sys.tables[0].fingerprint();

    // One connection floods asks while another swaps mid-stream; every
    // single ask must be answered (old model or new — both valid), and
    // the swap must succeed.
    std::thread::scope(|s| {
        let asker = s.spawn(move || {
            let mut c = RawClient::connect(addr);
            let mut answered = 0usize;
            for i in 0..30 {
                let req = Request::new(
                    100 + i,
                    "acme",
                    Op::Ask(AskItem {
                        fingerprint: fp,
                        question: sys.questions[i as usize % sys.questions.len()].1.clone(),
                        guided: false,
                    }),
                );
                let line = c.roundtrip(&req);
                assert!(
                    line.contains("\"type\":\"answer\""),
                    "ask {i} was not answered during the swap window: {line}"
                );
                answered += 1;
            }
            answered
        });
        let swapped = setup.roundtrip(&Request::new(1, "ops", Op::SwapCheckpoint {
            path: sys.ckpt.display().to_string(),
        }));
        assert!(swapped.contains("\"type\":\"swapped\""), "{swapped}");
        assert_eq!(asker.join().expect("asker thread"), 30);
    });
    server.shutdown();
}

#[test]
fn stats_attribute_cache_and_admission_per_tenant() {
    let _guard = pool_lock();
    let sys = system();
    let nlidb = Nlidb::load(&sys.ckpt).expect("load test checkpoint");
    let server = Server::start(nlidb, ServerConfig::default()).expect("start test server");
    let mut c = RawClient::connect(server.addr());

    // Two tenants, one table each; alpha asks the same question twice
    // (miss then hit).
    for (id, tenant, table) in
        [(0, "alpha", &sys.tables[0]), (1, "beta", &sys.tables[1])]
    {
        let reg = c.roundtrip(&Request::new(id, tenant, Op::RegisterTable {
            table: table.clone(),
        }));
        assert!(reg.contains("\"type\":\"registered\""), "{reg}");
    }
    let fp0 = sys.tables[0].fingerprint();
    let ask = Request::new(
        2,
        "alpha",
        Op::Ask(AskItem { fingerprint: fp0, question: sys.questions[0].1.clone(), guided: false }),
    );
    let first = c.roundtrip(&ask);
    assert_eq!(c.roundtrip(&ask), first, "cache hit changed the answer bytes");

    // Tenancy boundary: beta cannot see alpha's table.
    let intrusion = c.roundtrip(&Request::new(
        3,
        "beta",
        Op::Ask(AskItem { fingerprint: fp0, question: sys.questions[0].1.clone(), guided: false }),
    ));
    assert!(intrusion.contains("\"code\":\"unknown_table\""), "{intrusion}");

    let line = c.roundtrip(&Request::new(4, "ops", Op::Stats));
    let parsed = nlidb_json::Json::parse(&line).expect("stats response parses");
    let resp = <Response as nlidb_json::FromJson>::from_json(&parsed).expect("stats decodes");
    let stats = match resp.result {
        Ok(Reply::Stats(s)) => s,
        other => panic!("expected stats reply, got {other:?}"),
    };
    assert_eq!(stats.tables.len(), 2, "both tables in the catalog");
    let t0 = stats
        .tables
        .iter()
        .find(|t| t.fingerprint == fp0)
        .expect("alpha's table in stats");
    assert_eq!(t0.tenants, vec!["alpha".to_string()]);
    assert_eq!(t0.cache.misses, 1, "first ask missed");
    assert_eq!(t0.cache.hits, 1, "second ask hit");
    assert_eq!(t0.cache.insertions, 1);
    let alpha = stats
        .tenants
        .iter()
        .find(|t| t.tenant == "alpha")
        .expect("alpha admission row");
    assert_eq!(alpha.admitted, 2);
    assert_eq!(alpha.in_flight, 0, "permits released after responses");
    assert_eq!(stats.questions, 2, "intrusion never reached the engine pipeline");
    server.shutdown();
}
