//! Fault injection at the connection layer (`docs/PROTOCOL.md` §5,
//! "failure containment"): malformed frames, oversized lines, invalid
//! UTF-8, mid-request disconnects, and admission shedding must each
//! produce their documented error code — and leave the engine's state
//! (catalog, cache, question/batch counters) byte-identical to a
//! history in which the faulty input never arrived.

mod common;

use common::{pool_lock, system, RawClient};
use nlidb_core::Nlidb;
use nlidb_json::{encode_frame, FromJson, Json, ToJson, MAX_FRAME_BYTES};
use nlidb_serve::{
    AdmissionConfig, AskItem, Op, Reply, Request, Response, Server, ServerConfig, ServerStats,
};

fn start_default() -> nlidb_serve::ServerHandle {
    let nlidb = Nlidb::load(&system().ckpt).expect("load test checkpoint");
    Server::start(nlidb, ServerConfig::default()).expect("start test server")
}

fn fetch_stats(c: &mut RawClient, id: i64) -> ServerStats {
    let line = c.roundtrip(&Request::new(id, "ops", Op::Stats));
    let parsed = Json::parse(&line).expect("stats response parses");
    match Response::from_json(&parsed).expect("stats decodes").result {
        Ok(Reply::Stats(s)) => s,
        other => panic!("expected stats reply, got {other:?}"),
    }
}

/// The engine-state projection that connection-layer faults must never
/// disturb. (The `requests` counter legitimately moves — every error
/// response written counts — so it is excluded.)
fn engine_state(s: &ServerStats) -> (u64, u64, String, String, u64) {
    (
        s.questions,
        s.batches,
        s.tables.to_json().to_string(),
        s.cache.to_json().to_string(),
        s.cache_len,
    )
}

fn register_first_table(c: &mut RawClient) -> u64 {
    let sys = system();
    let reg = c.roundtrip(&Request::new(0, "acme", Op::RegisterTable {
        table: sys.tables[0].clone(),
    }));
    assert!(reg.contains("\"type\":\"registered\""), "{reg}");
    sys.tables[0].fingerprint()
}

fn ask_request(id: i64, fingerprint: u64) -> Request {
    Request::new(
        id,
        "acme",
        Op::Ask(AskItem { fingerprint, question: system().questions[0].1.clone(), guided: false }),
    )
}

#[test]
fn connection_faults_yield_documented_codes_and_leave_engine_state_untouched() {
    let _guard = pool_lock();
    let server = start_default();
    let mut c = RawClient::connect(server.addr());

    // Establish real state first: a registered table, one answered ask.
    let fp = register_first_table(&mut c);
    let ask = ask_request(1, fp);
    let answer = c.roundtrip(&ask);
    assert!(answer.contains("\"type\":\"answer\""), "{answer}");
    let before = engine_state(&fetch_stats(&mut c, 2));

    // Fault: not JSON at all.
    c.send_bytes(b"{oops\n");
    let line = c.recv_line();
    assert!(line.contains("\"code\":\"bad_frame\"") && line.contains("\"id\":null"), "{line}");

    // Fault: invalid UTF-8.
    c.send_bytes(&[0xff, 0xfe, 0xfd, b'\n']);
    let line = c.recv_line();
    assert!(line.contains("\"code\":\"bad_frame\""), "{line}");

    // Fault: two JSON values on one line.
    c.send_bytes(b"{} {}\n");
    let line = c.recv_line();
    assert!(line.contains("\"code\":\"bad_frame\""), "{line}");

    // Fault: a frame over the 1 MiB bound — answered, discarded, and the
    // connection resynchronized at the newline.
    let mut oversized = vec![b'x'; MAX_FRAME_BYTES + 64];
    oversized.push(b'\n');
    c.send_bytes(&oversized);
    let line = c.recv_line();
    assert!(line.contains("\"code\":\"frame_too_long\""), "{line}");

    // Faults: valid JSON, invalid requests — each with its documented
    // code, each echoing whatever id it could parse.
    for (frame, code) in [
        (r#"[1,2,3]"#, "bad_request"),
        (r#"{"id":42}"#, "bad_request"),
        (r#"{"id":42,"op":"dance"}"#, "unknown_op"),
        (r#"{"id":42,"v":99,"op":"stats"}"#, "unsupported_version"),
        (r#"{"id":42,"op":"batch","tenant":"acme","items":[]}"#, "bad_request"),
        (r#"{"id":42,"op":"ask","tenant":"acme","fingerprint":"zz","question":[]}"#, "bad_request"),
    ] {
        c.send_bytes(format!("{frame}\n").as_bytes());
        let line = c.recv_line();
        assert!(line.contains(&format!("\"code\":\"{code}\"")), "{frame} → {line}");
        if frame.contains("\"id\":42") {
            assert!(line.contains("\"id\":42"), "id not echoed on error: {line}");
        }
    }

    // Blank lines between frames are tolerated — no response at all.
    c.send_bytes(b"\n  \n");

    // Fault: a client that disconnects mid-frame (no newline ever sent).
    {
        let mut dropper = RawClient::connect(server.addr());
        dropper.send_bytes(b"{\"op\":\"ask\",\"tenant\":\"acme\"");
    } // dropped here; the partial frame is discarded silently

    // None of the faults reached the engine: its state is byte-identical
    // to a history in which they never arrived.
    let after = engine_state(&fetch_stats(&mut c, 3));
    assert_eq!(after, before, "a connection-layer fault leaked into engine state");

    // And the faulted connection still works end to end.
    assert_eq!(c.roundtrip(&ask), answer, "connection unusable after faults");
    server.shutdown();
}

#[test]
fn abandoned_connection_releases_its_permit_and_drops_its_reply() {
    let _guard = pool_lock();
    let server = start_default();
    let mut c = RawClient::connect(server.addr());
    let fp = register_first_table(&mut c);

    // A client sends a full ask and vanishes without reading the reply.
    {
        let mut ghost = RawClient::connect(server.addr());
        ghost.send_bytes(encode_frame(&ask_request(99, fp).to_json()).as_bytes());
    }

    // The ask was already in flight, so it is served; the reply send
    // fails harmlessly and the admission permit is released. Stats
    // roundtrips (each a full network round trip) poll until the engine
    // has processed it.
    let mut polls = 0;
    let stats = loop {
        let s = fetch_stats(&mut c, 100 + polls);
        if s.questions >= 1 {
            break s;
        }
        polls += 1;
        assert!(polls < 2000, "engine never served the abandoned request");
    };
    let acme = stats.tenants.iter().find(|t| t.tenant == "acme").expect("acme row");
    assert_eq!(acme.in_flight, 0, "abandoned request leaked its admission permit");
    assert_eq!(acme.admitted, 1);

    // The server is fully healthy afterwards.
    let line = c.roundtrip(&ask_request(5, fp));
    assert!(line.contains("\"type\":\"answer\""), "{line}");
    server.shutdown();
}

#[test]
fn zero_capacity_tenant_sheds_deterministically_and_statelessly() {
    let _guard = pool_lock();
    let sys = system();
    let nlidb = Nlidb::load(&sys.ckpt).expect("load test checkpoint");
    let cfg = ServerConfig {
        admission: AdmissionConfig { per_tenant: 0, total: 16 },
        ..ServerConfig::default()
    };
    let server = Server::start(nlidb, cfg).expect("start test server");
    let mut c = RawClient::connect(server.addr());

    // Control ops bypass admission: registration works on a full server.
    let fp = register_first_table(&mut c);

    // The shed response is deterministic down to the byte: a function of
    // the request's id and tenant only (PROTOCOL.md §5).
    let expected = concat!(
        "{\"v\":1,\"id\":7,\"ok\":false,\"error\":{\"code\":\"overloaded\",",
        "\"message\":\"admission queue full for tenant 'acme'; retry later\"}}"
    );
    for _ in 0..3 {
        assert_eq!(c.roundtrip(&ask_request(7, fp)), expected);
    }
    let line = c.roundtrip(&Request::new(7, "acme", Op::Batch {
        items: vec![AskItem { fingerprint: fp, question: sys.questions[0].1.clone(), guided: false }],
    }));
    assert_eq!(line, expected, "batches shed with the same bytes");

    // Shed requests had no effect on engine state; stats still served.
    let stats = fetch_stats(&mut c, 8);
    assert_eq!(stats.questions, 0);
    assert_eq!(stats.batches, 0);
    assert_eq!(stats.cache_len, 0);
    let acme = stats.tenants.iter().find(|t| t.tenant == "acme").expect("acme row");
    assert_eq!(acme.shed, 4, "three asks and one one-item batch");
    assert_eq!(acme.admitted, 0);
    server.shutdown();
}

#[test]
fn pipelined_requests_are_answered_in_order() {
    let _guard = pool_lock();
    let sys = system();
    let server = start_default();
    let mut c = RawClient::connect(server.addr());
    let fp = register_first_table(&mut c);

    // Write a burst of frames before reading anything; responses must
    // come back in request order with matching ids.
    let mut burst = String::new();
    for i in 0..16i64 {
        let req = Request::new(i + 100, "acme", Op::Ask(AskItem {
            fingerprint: fp,
            question: sys.questions[i as usize % sys.questions.len()].1.clone(),
            guided: false,
        }));
        burst.push_str(&encode_frame(&req.to_json()));
    }
    c.send_bytes(burst.as_bytes());
    for i in 0..16i64 {
        let line = c.recv_line();
        assert!(
            line.starts_with(&format!("{{\"v\":1,\"id\":{},", i + 100)),
            "response {i} out of order: {line}"
        );
    }
    server.shutdown();
}

#[test]
fn requests_after_protocol_shutdown_get_shutting_down_or_eof() {
    let _guard = pool_lock();
    let sys = system();
    let server = start_default();
    let mut a = RawClient::connect(server.addr());
    let mut b = RawClient::connect(server.addr());

    let bye = a.roundtrip(&Request::new(0, "ops", Op::Shutdown));
    assert!(bye.contains("\"type\":\"bye\""), "{bye}");

    // Connection B races the teardown: it either gets the structured
    // `shutting_down` error or a clean close — never a hang or garbage.
    let req = Request::new(1, "acme", Op::Ask(AskItem {
        fingerprint: sys.tables[0].fingerprint(),
        question: vec!["hello".into()],
        guided: false,
    }));
    b.send_bytes(encode_frame(&req.to_json()).as_bytes());
    if let Some(line) = b.try_recv_line() {
        assert!(
            line.contains("\"code\":\"shutting_down\"")
                || line.contains("\"code\":\"unknown_table\""),
            "unexpected post-shutdown response: {line}"
        );
    }
    server.shutdown();
}
