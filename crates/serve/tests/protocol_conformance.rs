//! Executable-spec conformance: every fenced ```json block in
//! `docs/PROTOCOL.md` is round-tripped through the real protocol
//! encoder/decoder, and the canonical re-encoding must be byte-equal to
//! the bytes printed in the document. The test also asserts coverage —
//! every operation and every error code appears in at least one example
//! — so neither the document nor the code can drift without failing
//! tier-1.

use nlidb_json::{FromJson, Json, ToJson};
use nlidb_serve::{ErrorCode, Op, Reply, Request, Response};
use std::collections::BTreeSet;
use std::path::PathBuf;

fn spec_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../docs/PROTOCOL.md")
}

fn spec() -> String {
    std::fs::read_to_string(spec_path())
        .unwrap_or_else(|e| panic!("read {}: {e}", spec_path().display()))
}

/// Extracts the body of every ```json fence, with the 1-based line
/// number of its opening fence for error messages.
fn json_blocks(doc: &str) -> Vec<(usize, String)> {
    let mut blocks = Vec::new();
    let mut body: Option<(usize, Vec<&str>)> = None;
    for (i, line) in doc.lines().enumerate() {
        match &mut body {
            None if line.trim() == "```json" => body = Some((i + 1, Vec::new())),
            Some((start, lines)) => {
                if line.trim() == "```" {
                    blocks.push((*start, lines.join("\n")));
                    body = None;
                } else {
                    lines.push(line);
                }
            }
            None => {}
        }
    }
    assert!(body.is_none(), "unterminated ```json fence in PROTOCOL.md");
    blocks
}

#[test]
fn every_spec_example_roundtrips_byte_exact() {
    let doc = spec();
    let blocks = json_blocks(&doc);
    assert!(blocks.len() >= 20, "expected a full example set, found {} blocks", blocks.len());

    let mut ops_seen = BTreeSet::new();
    let mut replies_seen = BTreeSet::new();
    let mut codes_seen = BTreeSet::new();

    for (line, block) in &blocks {
        let text = block.trim();
        let parsed = Json::parse(text)
            .unwrap_or_else(|e| panic!("PROTOCOL.md:{line}: example is not valid JSON: {e:?}"));
        let is_request = parsed.get("op").is_some();
        let is_response = parsed.get("ok").is_some();
        assert!(
            is_request ^ is_response,
            "PROTOCOL.md:{line}: example must be exactly one of request (`op`) / response (`ok`)"
        );

        // Decode through the typed layer, re-encode canonically, and
        // demand the document printed exactly the canonical bytes.
        let canonical = if is_request {
            let req = Request::decode(&parsed).unwrap_or_else(|e| {
                panic!("PROTOCOL.md:{line}: request does not decode: {:?} {}", e.code, e.message)
            });
            ops_seen.insert(req.op.name());
            req.to_json().to_string()
        } else {
            let resp = Response::from_json(&parsed)
                .unwrap_or_else(|e| panic!("PROTOCOL.md:{line}: response does not decode: {e:?}"));
            match &resp.result {
                Ok(reply) => {
                    replies_seen.insert(reply.type_name());
                    if let Reply::Batch { results } = reply {
                        for item in results {
                            if let nlidb_serve::BatchItem::Failed(e) = item {
                                codes_seen.insert(e.code);
                            }
                        }
                    }
                }
                Err(e) => {
                    codes_seen.insert(e.code);
                }
            }
            resp.to_json().to_string()
        };
        assert_eq!(
            text, canonical,
            "PROTOCOL.md:{line}: example bytes are not the canonical encoding"
        );
    }

    // Coverage: every operation, every reply type, every error code.
    for op in ["register_table", "ask", "batch", "swap_checkpoint", "stats", "shutdown"] {
        assert!(ops_seen.contains(op), "no PROTOCOL.md example exercises op `{op}`");
    }
    for ty in ["registered", "answer", "batch", "swapped", "stats", "bye"] {
        assert!(replies_seen.contains(ty), "no PROTOCOL.md example shows reply type `{ty}`");
    }
    for code in ErrorCode::ALL {
        assert!(
            codes_seen.contains(&code),
            "no PROTOCOL.md example shows error code `{}`",
            code.as_str()
        );
    }
}

#[test]
fn spec_error_table_lists_every_code_and_no_ghosts() {
    let doc = spec();
    // §6's table rows look like `| `code` | ... |`.
    let table_codes: BTreeSet<&str> = doc
        .lines()
        .filter(|l| l.starts_with("| `"))
        .filter_map(|l| l.trim_start_matches("| `").split('`').next())
        .filter(|name| ErrorCode::from_str(name).is_some() || name.contains('_'))
        .collect();
    for code in ErrorCode::ALL {
        assert!(
            table_codes.contains(code.as_str()),
            "PROTOCOL.md §6 table is missing `{}`",
            code.as_str()
        );
    }
    for name in &table_codes {
        assert!(
            ErrorCode::from_str(name).is_some(),
            "PROTOCOL.md §6 table documents nonexistent code `{name}`"
        );
    }
}

#[test]
fn spec_fingerprints_are_canonical_hex() {
    // All fingerprint values in examples must be the canonical 16
    // lowercase hex digits the server emits.
    let doc = spec();
    for (line, block) in json_blocks(&doc) {
        let mut rest = block.as_str();
        while let Some(pos) = rest.find("\"fingerprint\":\"") {
            rest = &rest[pos + "\"fingerprint\":\"".len()..];
            let end = rest.find('"').expect("unterminated fingerprint string");
            let fp = &rest[..end];
            assert_eq!(fp.len(), 16, "PROTOCOL.md:{line}: fingerprint `{fp}` is not 16 digits");
            assert!(
                fp.chars().all(|c| c.is_ascii_digit() || ('a'..='f').contains(&c)),
                "PROTOCOL.md:{line}: fingerprint `{fp}` is not lowercase hex"
            );
            rest = &rest[end..];
        }
    }

    // And the doc states the frame bound that the code actually enforces.
    assert!(
        doc.contains(&format!("{}", nlidb_json::MAX_FRAME_BYTES)),
        "PROTOCOL.md must state the MAX_FRAME_BYTES value ({})",
        nlidb_json::MAX_FRAME_BYTES
    );
}

/// The spec's register/ask/batch walkthrough is not just syntactically
/// canonical — driven through a real server, the table example yields a
/// fingerprint and the whole flow works end to end.
#[test]
fn spec_table_example_registers_on_a_real_server() {
    let doc = spec();
    let (line, register) = json_blocks(&doc)
        .into_iter()
        .find(|(_, b)| b.contains("\"op\":\"register_table\""))
        .expect("spec has a register_table example");
    let parsed = Json::parse(register.trim()).unwrap();
    let req = Request::decode(&parsed)
        .unwrap_or_else(|e| panic!("PROTOCOL.md:{line}: {:?} {}", e.code, e.message));
    let (tenant, table) = match req.op {
        Op::RegisterTable { table } => (req.tenant, table),
        other => panic!("expected register_table, got {}", other.name()),
    };
    assert_eq!(table.name, "films");
    assert_eq!(table.num_rows(), 2);

    let mut catalog = nlidb_serve::Catalog::default();
    let fp = catalog.register(&tenant, table);
    assert!(catalog.get_for(&tenant, fp).is_some(), "registered table resolvable for tenant");
    assert!(catalog.get_for("stranger", fp).is_none(), "tenancy is the authorization boundary");
}
