//! The smallest possible round trip: train a tiny model, start the
//! server in-process, register one table, ask one question, exit.
//!
//! ```bash
//! cargo run --release -p nlidb-serve --example ask_once
//! ```
//!
//! See `examples/serve_quickstart.rs` at the workspace root for the
//! full tour (batching, stats, hot swap, shutdown semantics).

use nlidb_core::{ModelConfig, Nlidb, NlidbOptions};
use nlidb_data::wikisql::{generate, WikiSqlConfig};
use nlidb_serve::{AskItem, Client, Op, Reply, Request, Server, ServerConfig};

fn main() {
    let corpus = generate(&WikiSqlConfig {
        seed: 7,
        train_tables: 8,
        questions_per_table: 6,
        ..WikiSqlConfig::default()
    });
    println!("training a tiny model (well under a minute) ...");
    let opts = NlidbOptions { model: ModelConfig::tiny(), ..NlidbOptions::default() };
    let nlidb = Nlidb::train(&corpus, opts);

    let server = Server::start(nlidb, ServerConfig::default()).expect("start server");
    let mut client = Client::connect(server.addr()).expect("connect");

    let example = &corpus.test[0];
    let table = (*example.table).clone();
    let reply = client
        .request(&Request::new(1, "demo", Op::RegisterTable { table }))
        .expect("register");
    let fingerprint = match reply.result {
        Ok(Reply::Registered { fingerprint }) => fingerprint,
        other => panic!("unexpected register reply: {other:?}"),
    };

    let reply = client
        .request(&Request::new(
            2,
            "demo",
            Op::Ask(AskItem { fingerprint, question: example.question.clone(), guided: false }),
        ))
        .expect("ask");
    match reply.result {
        Ok(Reply::Answer(a)) => println!(
            "Q: {}\nSQL: {}",
            example.question.join(" "),
            a.sql.as_deref().unwrap_or("<no parse>")
        ),
        other => println!("unexpected reply: {other:?}"),
    }
    // Dropping `server` shuts the listener down and joins its threads.
}
