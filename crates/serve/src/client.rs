//! A minimal blocking client for the wire protocol — enough for tests,
//! benches, examples, and operator scripts; not a connection pool.
//!
//! One request in flight at a time, mirroring the server's
//! one-response-per-request ordering guarantee: `request` writes a
//! frame, then blocks until the matching response frame arrives.

use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

use nlidb_json::{decode_frame, encode_frame, ToJson};

use crate::protocol::{Request, Response};
use nlidb_json::FromJson;

/// A synchronous protocol client over one TCP connection.
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    /// Connects to a server (e.g. the address from `ServerHandle::addr`).
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client { writer: stream, reader })
    }

    /// Sends one request and waits for its response.
    pub fn request(&mut self, req: &Request) -> io::Result<Response> {
        self.send_line(&encode_frame(&req.to_json()))?;
        self.read_response()
    }

    /// Sends raw bytes verbatim (no framing applied). Lets fault tests
    /// send malformed, oversized, or partial frames.
    pub fn send_line(&mut self, line: &str) -> io::Result<()> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.flush()
    }

    /// Reads and decodes the next response frame.
    pub fn read_response(&mut self) -> io::Result<Response> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        let json = decode_frame(&line)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        Response::from_json(&json)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.message().to_string()))
    }
}
