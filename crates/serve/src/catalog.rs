//! The server-side table catalog: registered tables keyed by
//! [`Table::fingerprint`], with the tenants allowed to query each one.
//!
//! Registration is **idempotent** — the fingerprint covers name, schema,
//! and every cell, so registering byte-identical content twice (same or
//! different tenant) lands on one entry. Tables are immutable once
//! registered (an edited table has a new fingerprint and is a new
//! entry), which is what lets prediction-cache entries keyed by
//! fingerprint stay valid for the life of the model.

use std::collections::BTreeMap;
use std::sync::Arc;

use nlidb_storage::Table;

/// One registered table and the tenants that registered it.
#[derive(Debug, Clone)]
pub struct CatalogEntry {
    /// The table, shared with in-flight inference batches.
    pub table: Arc<Table>,
    /// Tenants that registered this fingerprint, sorted and deduplicated.
    pub tenants: Vec<String>,
}

impl CatalogEntry {
    /// Whether `tenant` may query this table.
    pub fn authorizes(&self, tenant: &str) -> bool {
        self.tenants.iter().any(|t| t == tenant)
    }
}

/// The catalog. Iteration order is fingerprint order (deterministic for
/// `stats` output).
#[derive(Debug, Default)]
pub struct Catalog {
    entries: BTreeMap<u64, CatalogEntry>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// Registers `table` for `tenant` and returns its fingerprint.
    /// Idempotent: an already-registered fingerprint gains the tenant
    /// (if new) and the existing [`Arc`] is kept, so re-registration
    /// never invalidates tables referenced by in-flight requests.
    pub fn register(&mut self, tenant: &str, table: Table) -> u64 {
        let fp = table.fingerprint();
        let entry = self.entries.entry(fp).or_insert_with(|| CatalogEntry {
            table: Arc::new(table),
            tenants: Vec::new(),
        });
        if let Err(pos) = entry.tenants.binary_search_by(|t| t.as_str().cmp(tenant)) {
            entry.tenants.insert(pos, tenant.to_string());
        }
        fp
    }

    /// Looks up a fingerprint regardless of tenant.
    pub fn get(&self, fingerprint: u64) -> Option<&CatalogEntry> {
        self.entries.get(&fingerprint)
    }

    /// Looks up a fingerprint *for a tenant*: `None` unless the table
    /// exists **and** the tenant registered it. Tenancy is the
    /// authorization boundary — a tenant cannot query another tenant's
    /// table even by guessing its fingerprint.
    pub fn get_for(&self, tenant: &str, fingerprint: u64) -> Option<&CatalogEntry> {
        self.entries.get(&fingerprint).filter(|e| e.authorizes(tenant))
    }

    /// Number of registered tables.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Entries in fingerprint order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &CatalogEntry)> {
        self.entries.iter().map(|(fp, e)| (*fp, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nlidb_storage::{Column, DataType, Schema, Value};

    fn table(name: &str) -> Table {
        let mut t = Table::new(name, Schema::new(vec![Column::new("a", DataType::Int)]));
        t.push_row(vec![Value::Int(1)]);
        t
    }

    #[test]
    fn register_is_idempotent_and_multi_tenant() {
        let mut c = Catalog::new();
        let fp1 = c.register("acme", table("t"));
        let fp2 = c.register("acme", table("t"));
        assert_eq!(fp1, fp2);
        assert_eq!(c.len(), 1);
        let fp3 = c.register("zeta", table("t"));
        assert_eq!(fp1, fp3);
        assert_eq!(c.len(), 1);
        assert_eq!(c.get(fp1).unwrap().tenants, vec!["acme", "zeta"]);
    }

    #[test]
    fn tenancy_bounds_lookup() {
        let mut c = Catalog::new();
        let fp = c.register("acme", table("t"));
        assert!(c.get_for("acme", fp).is_some());
        assert!(c.get_for("zeta", fp).is_none(), "unregistered tenant rejected");
        assert!(c.get_for("acme", fp ^ 1).is_none(), "unknown fingerprint rejected");
    }

    #[test]
    fn distinct_content_gets_distinct_entries() {
        let mut c = Catalog::new();
        let a = c.register("t", table("a"));
        let b = c.register("t", table("b"));
        assert_ne!(a, b);
        assert_eq!(c.len(), 2);
        let fps: Vec<u64> = c.iter().map(|(fp, _)| fp).collect();
        let mut sorted = fps.clone();
        sorted.sort_unstable();
        assert_eq!(fps, sorted, "iteration is fingerprint-ordered");
    }
}
