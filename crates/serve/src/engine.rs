//! The inference engine thread: single owner of the model, catalog,
//! and prediction cache, fed jobs over an mpsc channel.
//!
//! ## Why a single thread
//!
//! Connection handling is concurrent, but *all* state that could
//! influence response bytes — the model, the catalog, the cache — is
//! owned by exactly one thread and mutated only between batches. Every
//! request is therefore answered against one well-defined
//! (model, catalog) snapshot: the one current when the job was
//! dequeued. That is the heart of the wire-determinism argument
//! (`docs/PROTOCOL.md` §5): interleaving can change *which order* jobs
//! dequeue in, but each job's response bytes are a pure function of
//! (request, registered table, active model), all of which are
//! order-independent for a fixed request log with fixed registrations.
//!
//! ## Micro-batching
//!
//! The loop collects `ask`/`batch` jobs until either `max_batch_questions`
//! questions are pending or the linger deadline passes, then dispatches
//! them as one [`ServeEngine::serve`] call. `ServeEngine` guarantees
//! batched output is byte-identical to serving each request alone, so
//! the *timing* knobs (`linger`, and the wall-clock reads backing them)
//! affect latency and throughput only — never bytes. Control jobs
//! (register / swap / stats / shutdown) act as batch barriers: one
//! arriving mid-collection ends the batch, which dispatches before the
//! control job runs, preserving queue order.
//!
//! ## Hot swap
//!
//! `swap_checkpoint` runs between batches like any control job: jobs
//! dequeued before it are answered by the old model, jobs after by the
//! new one, and nothing in flight is dropped. A successful swap resets
//! the prediction cache (entries are functions of the model). A failed
//! load leaves model *and* cache untouched and reports
//! `checkpoint_failed`.

use std::mem;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::time::{Duration, Instant};

use nlidb_core::{CacheTableStats, Nlidb, PredictionCache, ServeEngine, ServeRequest};
use nlidb_storage::Table;

use crate::admission::{Admission, Permit};
use crate::catalog::Catalog;
use crate::protocol::{
    fingerprint_to_hex, Answer, AskItem, BatchItem, CacheCounts, ErrorCode, Reply, ServerStats,
    TableStats, TenantStats, WireError,
};

/// Reply channel for one job. The engine always sends exactly one
/// value; a closed receiver (client disconnected while queued) is not
/// an error — the result is dropped and counted.
pub(crate) type ReplyTx = Sender<Result<Reply, WireError>>;

/// An admitted `ask` or `batch`, queued for the next micro-batch.
pub(crate) struct ServeJob {
    /// Requesting tenant (catalog authorization).
    pub tenant: String,
    /// The questions; a plain `ask` is a one-item job.
    pub items: Vec<AskItem>,
    /// `true` → reply with [`Reply::Batch`]; `false` → the single
    /// item's answer/error becomes the whole response.
    pub wrap_batch: bool,
    /// Where to send the result.
    pub reply: ReplyTx,
    /// Admission capacity held until this job is fully answered.
    /// Dropped with the job, on every path.
    #[allow(dead_code)] // held for its Drop impl
    pub permit: Permit,
}

/// One unit of engine work, in strict queue order.
pub(crate) enum Job {
    /// Answer questions (batchable).
    Serve(ServeJob),
    /// Register a table.
    Register { tenant: String, table: Table, reply: ReplyTx },
    /// Hot-swap the model from a checkpoint directory.
    Swap { path: String, reply: ReplyTx },
    /// Report server statistics.
    Stats { reply: ReplyTx },
    /// Stop the engine (and with it, the server).
    Shutdown { reply: ReplyTx },
}

/// Engine configuration (micro-batch triggers).
#[derive(Debug, Clone, Copy)]
pub(crate) struct EngineConfig {
    pub max_batch_questions: usize,
    pub linger: Duration,
    pub cache_capacity: usize,
}

/// The engine state machine. Constructed on the server thread, moved
/// into the engine thread, runs until shutdown or until every sender
/// disappears.
pub(crate) struct Engine {
    nlidb: Nlidb,
    cache: PredictionCache,
    catalog: Catalog,
    admission: Arc<Admission>,
    /// Responses written, all ops and errors included; bumped by
    /// connection threads, read here for `stats`.
    requests: Arc<AtomicU64>,
    cfg: EngineConfig,
    questions: u64,
    batches: u64,
    swaps: u64,
}

impl Engine {
    pub(crate) fn new(
        nlidb: Nlidb,
        admission: Arc<Admission>,
        requests: Arc<AtomicU64>,
        cfg: EngineConfig,
    ) -> Engine {
        Engine {
            nlidb,
            cache: PredictionCache::new(cfg.cache_capacity),
            catalog: Catalog::new(),
            admission,
            requests,
            cfg,
            questions: 0,
            batches: 0,
            swaps: 0,
        }
    }

    /// The job loop. `on_shutdown` runs once when a `shutdown` job is
    /// processed (the server uses it to stop the acceptor). Returns when
    /// shut down or when all job senders are gone.
    pub(crate) fn run(mut self, rx: Receiver<Job>, on_shutdown: impl Fn()) {
        loop {
            let job = match rx.recv() {
                Ok(j) => j,
                Err(_) => break, // server handle and all connections gone
            };
            match job {
                Job::Serve(first) => {
                    let (batch, deferred) = self.collect_batch(first, &rx);
                    self.dispatch(batch);
                    if let Some(control) = deferred {
                        if self.handle_control(control) {
                            on_shutdown();
                            break;
                        }
                    }
                }
                control => {
                    if self.handle_control(control) {
                        on_shutdown();
                        break;
                    }
                }
            }
        }
        // Jobs still queued are dropped here with `rx`; their reply
        // channels close, and each connection answers `shutting_down`.
    }

    /// Gathers serve jobs until the size or linger trigger fires. A
    /// control job arriving mid-collection is returned for the caller
    /// to run *after* the batch — queue order is preserved.
    fn collect_batch(&self, first: ServeJob, rx: &Receiver<Job>) -> (Vec<ServeJob>, Option<Job>) {
        let mut pending = vec![first];
        let mut queued: usize = pending.iter().map(|j| j.items.len()).sum();
        // Wall-clock here bounds *latency* only; batch boundaries never
        // influence response bytes (see module docs).
        let deadline = Instant::now() + self.cfg.linger;
        while queued < self.cfg.max_batch_questions {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                break;
            }
            match rx.recv_timeout(remaining) {
                Ok(Job::Serve(j)) => {
                    queued += j.items.len();
                    pending.push(j);
                }
                Ok(control) => return (pending, Some(control)),
                Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => break,
            }
        }
        (pending, None)
    }

    /// Answers one micro-batch with a single `ServeEngine::serve` call.
    fn dispatch(&mut self, jobs: Vec<ServeJob>) {
        let _sp = nlidb_trace::span("server.batch");
        self.batches += 1;
        nlidb_trace::count("server.batches", 1);

        // Resolve every item against the catalog (tenant-scoped).
        let slots: Vec<Vec<Result<Arc<Table>, WireError>>> = jobs
            .iter()
            .map(|job| {
                job.items
                    .iter()
                    .map(|item| match self.catalog.get_for(&job.tenant, item.fingerprint) {
                        Some(e) => Ok(Arc::clone(&e.table)),
                        None => Err(WireError::new(
                            ErrorCode::UnknownTable,
                            format!(
                                "no table {} registered for tenant '{}'",
                                fingerprint_to_hex(item.fingerprint),
                                job.tenant
                            ),
                        )),
                    })
                    .collect()
            })
            .collect();

        // Flatten resolvable items into one engine batch.
        let mut origin: Vec<(usize, usize)> = Vec::new();
        let mut reqs: Vec<ServeRequest<'_>> = Vec::new();
        for (ji, job) in jobs.iter().enumerate() {
            for (ii, item) in job.items.iter().enumerate() {
                if let Ok(table) = &slots[ji][ii] {
                    reqs.push(ServeRequest { question: &item.question, table, guided: item.guided });
                    origin.push((ji, ii));
                }
            }
        }

        let preds = if reqs.is_empty() {
            Vec::new()
        } else {
            let mut eng = ServeEngine::with_cache(&self.nlidb, mem::take(&mut self.cache));
            let out = eng.serve(&reqs);
            self.cache = eng.into_cache();
            out
        };
        self.questions += reqs.len() as u64;
        nlidb_trace::count("server.questions", reqs.len() as u64);

        // Scatter predictions back to their jobs, render SQL, reply.
        // `origin` only indexes resolved slots, so the lookups below
        // cannot fail; if that invariant ever breaks, the affected item
        // answers `internal` instead of panicking the engine thread.
        let internal = |what: &str| {
            WireError::new(ErrorCode::Internal, format!("engine invariant violated: {what}"))
        };
        let mut answers: Vec<Vec<Option<BatchItem>>> =
            jobs.iter().map(|j| vec![None; j.items.len()]).collect();
        for ((ji, ii), pred) in origin.into_iter().zip(preds) {
            let item = match slots[ji][ii].as_ref() {
                Ok(table) => {
                    let cols = table.column_names();
                    BatchItem::Answer(Answer {
                        sql: pred.as_ref().map(|q| q.to_sql(&cols)),
                        query: pred,
                    })
                }
                Err(_) => BatchItem::Failed(internal("origin maps to an unresolved slot")),
            };
            answers[ji][ii] = Some(item);
        }
        for (ji, job) in jobs.into_iter().enumerate() {
            let results: Vec<BatchItem> = answers[ji]
                .drain(..)
                .enumerate()
                .map(|(ii, slot)| match (slot, &slots[ji][ii]) {
                    (Some(b), _) => b,
                    (None, Err(e)) => BatchItem::Failed(e.clone()),
                    (None, Ok(_)) => {
                        BatchItem::Failed(internal("resolved item received no prediction"))
                    }
                })
                .collect();
            let reply = if job.wrap_batch {
                Ok(Reply::Batch { results })
            } else {
                match results.into_iter().next() {
                    Some(BatchItem::Answer(a)) => Ok(Reply::Answer(a)),
                    Some(BatchItem::Failed(e)) => Err(e),
                    None => Err(internal("ask job carried no items")),
                }
            };
            if job.reply.send(reply).is_err() {
                nlidb_trace::count("server.dropped_replies", 1);
            }
            // `job.permit` drops here: capacity released only after the
            // answer is handed to the connection.
        }
    }

    /// Handles a control job. Returns `true` on shutdown.
    fn handle_control(&mut self, job: Job) -> bool {
        match job {
            // `run` routes serve jobs through `collect_batch`, so one
            // arriving here is a routing bug — answer it as a batch of
            // one rather than panicking the engine thread.
            Job::Serve(job) => {
                self.dispatch(vec![job]);
                false
            }
            Job::Register { tenant, table, reply } => {
                let _sp = nlidb_trace::span("server.register");
                let fingerprint = self.catalog.register(&tenant, table);
                nlidb_trace::count("server.registered", 1);
                let _ = reply.send(Ok(Reply::Registered { fingerprint }));
                false
            }
            Job::Swap { path, reply } => {
                let _sp = nlidb_trace::span("server.swap");
                let result = match Nlidb::load(&path) {
                    Ok(model) => {
                        self.nlidb = model;
                        // Cached predictions are functions of the old
                        // model; a stale hit would break determinism.
                        self.cache = PredictionCache::new(self.cfg.cache_capacity);
                        self.swaps += 1;
                        nlidb_trace::count("server.swaps", 1);
                        Ok(Reply::Swapped { checkpoint: path })
                    }
                    Err(e) => Err(WireError::new(
                        ErrorCode::CheckpointFailed,
                        format!("cannot load checkpoint '{path}': {e}"),
                    )),
                };
                let _ = reply.send(result);
                false
            }
            Job::Stats { reply } => {
                let _ = reply.send(Ok(Reply::Stats(self.stats())));
                false
            }
            Job::Shutdown { reply } => {
                let _ = reply.send(Ok(Reply::Bye));
                true
            }
        }
    }

    fn stats(&self) -> ServerStats {
        let counts = |s: CacheTableStats| CacheCounts {
            hits: s.hits,
            misses: s.misses,
            insertions: s.insertions,
            evictions: s.evictions,
        };
        ServerStats {
            // lint:allow(atomic-ordering): monotonic stats counter read; no other memory is published under it, and stats tolerate a stale value.
            requests: self.requests.load(Ordering::Relaxed),
            questions: self.questions,
            batches: self.batches,
            swaps: self.swaps,
            tenants: self
                .admission
                .snapshot()
                .into_iter()
                .map(|(tenant, c)| TenantStats {
                    tenant,
                    admitted: c.admitted,
                    shed: c.shed,
                    in_flight: c.in_flight,
                })
                .collect(),
            tables: self
                .catalog
                .iter()
                .map(|(fp, e)| TableStats {
                    fingerprint: fp,
                    name: e.table.name.clone(),
                    tenants: e.tenants.clone(),
                    rows: e.table.num_rows() as u64,
                    cache: counts(self.cache.table_stats(fp)),
                })
                .collect(),
            cache: CacheCounts {
                hits: self.cache.hits(),
                misses: self.cache.misses(),
                insertions: self.cache.insertions(),
                evictions: self.cache.evictions(),
            },
            cache_len: self.cache.len() as u64,
        }
    }
}
