//! # nlidb-serve
//!
//! A multi-tenant TCP serving layer over the deterministic batched
//! inference engine (`nlidb_core::ServeEngine`). The wire protocol is
//! specified in `docs/PROTOCOL.md`; the design rationale is DESIGN.md's
//! "Multi-tenant serving" section.
//!
//! The pieces:
//!
//! - [`protocol`] — typed wire messages with canonical JSON encodings
//!   (newline-delimited frames via `nlidb_json::frame`).
//! - [`catalog`] — registered tables keyed by content fingerprint, with
//!   tenant-scoped authorization.
//! - [`admission`] — per-tenant and global bounded queues; overload is
//!   shed deterministically with a structured error, never by blocking
//!   or unbounded buffering.
//! - [`server`] — the TCP front end: acceptor, per-connection threads,
//!   bounded frame reader, graceful shutdown. The inference engine runs
//!   on a single thread that owns model, catalog, and prediction cache,
//!   micro-batching concurrent questions into `ServeEngine::serve`
//!   calls and hot-swapping checkpoints between batches.
//! - [`client`] — a small blocking client for tests and operator tools.
//!
//! ## The determinism contract, in one paragraph
//!
//! For a fixed request log (registrations before the asks that use
//! them), the body of every `ask`/`batch` response is byte-identical
//! regardless of connection count, thread scheduling, micro-batch
//! boundaries, or timeout settings. This holds because (a) all
//! answer-affecting state is owned by one engine thread, (b) the
//! batched engine is byte-identical to sequential prediction, and
//! (c) timeouts and admission only decide *whether/when* a request is
//! served, never *what* a served request answers. `stats` responses
//! report lifetime counters and are explicitly outside the contract.

#![warn(missing_docs)]

pub mod admission;
pub mod catalog;
pub mod client;
mod engine;
pub mod protocol;
pub mod server;

pub use admission::{Admission, AdmissionConfig, Permit, TenantCounters};
pub use catalog::{Catalog, CatalogEntry};
pub use client::Client;
pub use protocol::{
    fingerprint_from_hex, fingerprint_to_hex, Answer, AskItem, BatchItem, CacheCounts, ErrorCode,
    Op, Reply, Request, Response, ServerStats, TableStats, TenantStats, WireError,
    PROTOCOL_VERSION,
};
pub use server::{Server, ServerConfig, ServerHandle};
