//! Wire-protocol message types (the code half of `docs/PROTOCOL.md`).
//!
//! Every message is one newline-delimited JSON frame
//! (`nlidb_json::frame`). This module owns the typed request/response
//! vocabulary and its canonical encoding; the spec document shows
//! example frames that a conformance test
//! (`crates/serve/tests/protocol_conformance.rs`) round-trips through
//! the impls here, so document and code cannot drift apart.
//!
//! ## Canonical encoding
//!
//! [`ToJson`] impls emit fields in a fixed order (`v`, `id`, `op`/`ok`,
//! then op-specific fields) and the compact serializer preserves that
//! order, so a given message value has exactly one wire form. Decoding
//! is field-order independent and tolerates unknown extra fields — the
//! protocol's forward-compatibility rule (`docs/PROTOCOL.md` §7).

use nlidb_json::{FromJson, Json, JsonError, ToJson};
use nlidb_sqlir::Query;
use nlidb_storage::Table;

/// The protocol version this build speaks. Requests may omit `v`
/// (treated as version 1); a request carrying a higher version is
/// rejected with [`ErrorCode::UnsupportedVersion`].
pub const PROTOCOL_VERSION: u64 = 1;

/// Renders a table fingerprint in its wire form: exactly 16 lowercase
/// hex digits, zero-padded. (JSON integers are signed 64-bit in this
/// stack; fingerprints are full-range `u64`, so they travel as strings.)
pub fn fingerprint_to_hex(fp: u64) -> String {
    format!("{fp:016x}")
}

/// Parses a wire fingerprint. Accepts 1–16 hex digits, any case;
/// canonical form is 16 lowercase digits.
pub fn fingerprint_from_hex(s: &str) -> Option<u64> {
    if s.is_empty() || s.len() > 16 {
        return None;
    }
    u64::from_str_radix(s, 16).ok()
}

/// Structured error codes (`docs/PROTOCOL.md` §6). The wire form is the
/// snake_case string from [`ErrorCode::as_str`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ErrorCode {
    /// The frame was not a single well-formed JSON value.
    BadFrame,
    /// The frame was JSON but not a valid request (missing/ill-typed
    /// fields, unknown fingerprint encoding, empty batch, …).
    BadRequest,
    /// The request's `v` exceeds [`PROTOCOL_VERSION`].
    UnsupportedVersion,
    /// The `op` string names no known operation.
    UnknownOp,
    /// The fingerprint is not registered (for this tenant).
    UnknownTable,
    /// Admission control shed the request (per-tenant or global queue
    /// full). The request had no effect; retry later.
    Overloaded,
    /// The frame exceeded `nlidb_json::MAX_FRAME_BYTES`.
    FrameTooLong,
    /// `swap_checkpoint` could not load the named checkpoint; the
    /// previous model stays active.
    CheckpointFailed,
    /// The request was valid but its response would exceed
    /// `nlidb_json::MAX_FRAME_BYTES` (frames are bounded in both
    /// directions); narrow the request.
    ResponseTooLarge,
    /// The server is shutting down; the request was not processed.
    ShuttingDown,
    /// An engine invariant was violated while answering (a bug, not a
    /// bad request): the request fails with this code instead of
    /// panicking the engine thread, and other requests are unaffected.
    Internal,
}

impl ErrorCode {
    /// Every code, in wire-name order (the spec's §6 table is generated
    /// from the same list by hand; the conformance test cross-checks).
    pub const ALL: [ErrorCode; 11] = [
        ErrorCode::BadFrame,
        ErrorCode::BadRequest,
        ErrorCode::CheckpointFailed,
        ErrorCode::FrameTooLong,
        ErrorCode::Internal,
        ErrorCode::Overloaded,
        ErrorCode::ResponseTooLarge,
        ErrorCode::ShuttingDown,
        ErrorCode::UnknownOp,
        ErrorCode::UnknownTable,
        ErrorCode::UnsupportedVersion,
    ];

    /// The wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::BadFrame => "bad_frame",
            ErrorCode::BadRequest => "bad_request",
            ErrorCode::UnsupportedVersion => "unsupported_version",
            ErrorCode::UnknownOp => "unknown_op",
            ErrorCode::UnknownTable => "unknown_table",
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::FrameTooLong => "frame_too_long",
            ErrorCode::CheckpointFailed => "checkpoint_failed",
            ErrorCode::ResponseTooLarge => "response_too_large",
            ErrorCode::ShuttingDown => "shutting_down",
            ErrorCode::Internal => "internal",
        }
    }

    /// Parses a wire name.
    pub fn from_str(s: &str) -> Option<ErrorCode> {
        ErrorCode::ALL.into_iter().find(|c| c.as_str() == s)
    }
}

/// A structured protocol error: a machine-readable code plus a
/// human-readable message. Messages are deterministic functions of the
/// offending request and the server configuration — never of timing,
/// load, or other connections.
#[derive(Debug, Clone, PartialEq)]
pub struct WireError {
    /// The error class.
    pub code: ErrorCode,
    /// Human-readable detail.
    pub message: String,
}

impl WireError {
    /// Convenience constructor.
    pub fn new(code: ErrorCode, message: impl Into<String>) -> WireError {
        WireError { code, message: message.into() }
    }
}

impl ToJson for WireError {
    fn to_json(&self) -> Json {
        Json::obj([
            ("code", Json::Str(self.code.as_str().to_string())),
            ("message", Json::Str(self.message.clone())),
        ])
    }
}

impl FromJson for WireError {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        let code: String = j.req("code")?;
        let code = ErrorCode::from_str(&code)
            .ok_or_else(|| JsonError::new(format!("unknown error code '{code}'")))?;
        Ok(WireError { code, message: j.req("message")? })
    }
}

/// One question against one registered table (the unit of `ask` and the
/// element of `batch`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AskItem {
    /// [`Table::fingerprint`] of the registered target table.
    pub fingerprint: u64,
    /// The tokenized question.
    pub question: Vec<String>,
    /// Opt-in execution-guided decoding (`docs/PROTOCOL.md` §4.2):
    /// candidates are executed against the table and repaired
    /// deterministically. Defaults to `false` (the unguided path); the
    /// canonical encoding omits the field when false.
    pub guided: bool,
}

impl AskItem {
    fn to_json_fields(&self) -> Vec<(String, Json)> {
        let mut fields = vec![
            ("fingerprint".into(), Json::Str(fingerprint_to_hex(self.fingerprint))),
            ("question".into(), self.question.to_json()),
        ];
        // Canonical encoding: `guided` appears exactly when true, so
        // unguided requests are byte-identical to the pre-guidance wire
        // format.
        if self.guided {
            fields.push(("guided".into(), Json::Bool(true)));
        }
        fields
    }

    fn from_json_fields(j: &Json) -> Result<AskItem, JsonError> {
        let fp: String = j.req("fingerprint")?;
        let fingerprint = fingerprint_from_hex(&fp)
            .ok_or_else(|| JsonError::new(format!("invalid fingerprint '{fp}'")))?;
        // `question` is canonically an array of tokens; a plain string is
        // accepted and split on whitespace as a client convenience.
        let question = match j.get("question") {
            Some(Json::Str(s)) => s.split_whitespace().map(str::to_string).collect(),
            _ => j.req::<Vec<String>>("question")?,
        };
        let guided = j.opt::<bool>("guided")?.unwrap_or(false);
        Ok(AskItem { fingerprint, question, guided })
    }
}

impl ToJson for AskItem {
    fn to_json(&self) -> Json {
        Json::Obj(self.to_json_fields())
    }
}

impl FromJson for AskItem {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        AskItem::from_json_fields(j)
    }
}

/// The operations a client may request (`docs/PROTOCOL.md` §4).
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// Register a table under the requesting tenant; idempotent.
    RegisterTable {
        /// The full table (name, schema, column-major cells).
        table: Table,
    },
    /// Answer one question against a registered table.
    Ask(AskItem),
    /// Answer several questions in one request (the client-side
    /// micro-batch; items may target different tables).
    Batch {
        /// The questions, answered in order.
        items: Vec<AskItem>,
    },
    /// Hot-swap the model from a checkpoint directory.
    SwapCheckpoint {
        /// Path to a directory written by `Nlidb::save`.
        path: String,
    },
    /// Report catalog, admission, and cache statistics.
    Stats,
    /// Gracefully stop the server.
    Shutdown,
}

impl Op {
    /// The wire `op` string.
    pub fn name(&self) -> &'static str {
        match self {
            Op::RegisterTable { .. } => "register_table",
            Op::Ask(_) => "ask",
            Op::Batch { .. } => "batch",
            Op::SwapCheckpoint { .. } => "swap_checkpoint",
            Op::Stats => "stats",
            Op::Shutdown => "shutdown",
        }
    }
}

/// One client request frame.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Client-chosen correlation value, echoed verbatim in the
    /// response. Any JSON scalar; `null` when omitted.
    pub id: Json,
    /// The requesting tenant (admission-control and catalog namespace).
    /// Empty when omitted — the anonymous tenant.
    pub tenant: String,
    /// The operation.
    pub op: Op,
}

impl Request {
    /// Builds a request with a numeric id.
    pub fn new(id: i64, tenant: impl Into<String>, op: Op) -> Request {
        Request { id: Json::Int(id), tenant: tenant.into(), op }
    }

    /// Decodes a parsed frame into a request, mapping every failure to
    /// the structured error the server must answer with.
    pub fn decode(j: &Json) -> Result<Request, WireError> {
        if j.as_obj().is_none() {
            return Err(WireError::new(ErrorCode::BadRequest, "request frame must be an object"));
        }
        let v = j
            .opt::<u64>("v")
            .map_err(|e| WireError::new(ErrorCode::BadRequest, e.message()))?
            .unwrap_or(1);
        if v > PROTOCOL_VERSION {
            return Err(WireError::new(
                ErrorCode::UnsupportedVersion,
                format!("protocol version {v} > supported {PROTOCOL_VERSION}"),
            ));
        }
        let id = j.get("id").cloned().unwrap_or(Json::Null);
        let tenant = j
            .opt::<String>("tenant")
            .map_err(|e| WireError::new(ErrorCode::BadRequest, e.message()))?
            .unwrap_or_default();
        let op_name = j
            .req::<String>("op")
            .map_err(|e| WireError::new(ErrorCode::BadRequest, e.message()))?;
        let bad = |e: JsonError| WireError::new(ErrorCode::BadRequest, e.message());
        let op = match op_name.as_str() {
            "register_table" => Op::RegisterTable { table: j.req("table").map_err(bad)? },
            "ask" => Op::Ask(AskItem::from_json_fields(j).map_err(bad)?),
            "batch" => {
                let items: Vec<AskItem> = j.req("items").map_err(bad)?;
                if items.is_empty() {
                    return Err(WireError::new(ErrorCode::BadRequest, "batch with no items"));
                }
                Op::Batch { items }
            }
            "swap_checkpoint" => Op::SwapCheckpoint { path: j.req("path").map_err(bad)? },
            "stats" => Op::Stats,
            "shutdown" => Op::Shutdown,
            other => {
                return Err(WireError::new(
                    ErrorCode::UnknownOp,
                    format!("unknown op '{other}'"),
                ))
            }
        };
        Ok(Request { id, tenant, op })
    }
}

impl ToJson for Request {
    fn to_json(&self) -> Json {
        let mut fields = vec![
            ("v".into(), Json::Int(PROTOCOL_VERSION as i64)),
            ("id".into(), self.id.clone()),
            ("op".into(), Json::Str(self.op.name().to_string())),
            ("tenant".into(), Json::Str(self.tenant.clone())),
        ];
        match &self.op {
            Op::RegisterTable { table } => fields.push(("table".into(), table.to_json())),
            Op::Ask(item) => fields.extend(item.to_json_fields()),
            Op::Batch { items } => fields.push(("items".into(), items.to_json())),
            Op::SwapCheckpoint { path } => fields.push(("path".into(), path.to_json())),
            Op::Stats | Op::Shutdown => {}
        }
        Json::Obj(fields)
    }
}

impl FromJson for Request {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        Request::decode(j).map_err(|e| JsonError::new(format!("{}: {}", e.code.as_str(), e.message)))
    }
}

/// A single answered question: the predicted query (structured) and its
/// SQL rendering against the target table's column names. Both are
/// `null` when the pipeline produced no prediction.
#[derive(Debug, Clone, PartialEq)]
pub struct Answer {
    /// The predicted query, if any.
    pub query: Option<Query>,
    /// `query` rendered as SQL text.
    pub sql: Option<String>,
}

impl ToJson for Answer {
    fn to_json(&self) -> Json {
        Json::obj([
            ("sql", match &self.sql {
                Some(s) => Json::Str(s.clone()),
                None => Json::Null,
            }),
            ("query", match &self.query {
                Some(q) => q.to_json(),
                None => Json::Null,
            }),
        ])
    }
}

impl FromJson for Answer {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        Ok(Answer { query: j.opt("query")?, sql: j.opt("sql")? })
    }
}

/// One element of a `batch` response: an answer, or a per-item error
/// (e.g. one unknown fingerprint does not fail the other items).
#[derive(Debug, Clone, PartialEq)]
pub enum BatchItem {
    /// The item was answered.
    Answer(Answer),
    /// The item failed.
    Failed(WireError),
}

impl ToJson for BatchItem {
    fn to_json(&self) -> Json {
        match self {
            BatchItem::Answer(a) => a.to_json(),
            BatchItem::Failed(e) => Json::obj([("error", e.to_json())]),
        }
    }
}

impl FromJson for BatchItem {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        match j.get("error") {
            Some(e) => Ok(BatchItem::Failed(WireError::from_json(e)?)),
            None => Ok(BatchItem::Answer(Answer::from_json(j)?)),
        }
    }
}

/// Cache accounting as it travels on the wire (mirrors
/// `nlidb_core::CacheTableStats`, re-declared here because the JSON
/// traits cannot be implemented for a foreign type in this crate).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheCounts {
    /// Lookup hits.
    pub hits: u64,
    /// Lookup misses.
    pub misses: u64,
    /// Insertions.
    pub insertions: u64,
    /// Evictions.
    pub evictions: u64,
}

impl ToJson for CacheCounts {
    fn to_json(&self) -> Json {
        Json::obj([
            ("hits", self.hits.to_json()),
            ("misses", self.misses.to_json()),
            ("insertions", self.insertions.to_json()),
            ("evictions", self.evictions.to_json()),
        ])
    }
}

impl FromJson for CacheCounts {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        Ok(CacheCounts {
            hits: j.req("hits")?,
            misses: j.req("misses")?,
            insertions: j.req("insertions")?,
            evictions: j.req("evictions")?,
        })
    }
}

/// Per-tenant admission statistics (one row of `stats`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TenantStats {
    /// Tenant name.
    pub tenant: String,
    /// Questions admitted (lifetime).
    pub admitted: u64,
    /// Questions shed by admission control (lifetime).
    pub shed: u64,
    /// Questions currently queued or executing.
    pub in_flight: u64,
}

impl ToJson for TenantStats {
    fn to_json(&self) -> Json {
        Json::obj([
            ("tenant", self.tenant.to_json()),
            ("admitted", self.admitted.to_json()),
            ("shed", self.shed.to_json()),
            ("in_flight", self.in_flight.to_json()),
        ])
    }
}

impl FromJson for TenantStats {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        Ok(TenantStats {
            tenant: j.req("tenant")?,
            admitted: j.req("admitted")?,
            shed: j.req("shed")?,
            in_flight: j.req("in_flight")?,
        })
    }
}

/// Per-registered-table statistics (one row of `stats`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TableStats {
    /// The table's fingerprint.
    pub fingerprint: u64,
    /// Table name as registered.
    pub name: String,
    /// Tenants that registered it, sorted.
    pub tenants: Vec<String>,
    /// Row count.
    pub rows: u64,
    /// Per-fingerprint prediction-cache accounting — the per-tenant
    /// attribution the engine-global counters cannot provide.
    pub cache: CacheCounts,
}

impl ToJson for TableStats {
    fn to_json(&self) -> Json {
        Json::obj([
            ("fingerprint", Json::Str(fingerprint_to_hex(self.fingerprint))),
            ("name", self.name.to_json()),
            ("tenants", self.tenants.to_json()),
            ("rows", self.rows.to_json()),
            ("cache", self.cache.to_json()),
        ])
    }
}

impl FromJson for TableStats {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        let fp: String = j.req("fingerprint")?;
        Ok(TableStats {
            fingerprint: fingerprint_from_hex(&fp)
                .ok_or_else(|| JsonError::new(format!("invalid fingerprint '{fp}'")))?,
            name: j.req("name")?,
            tenants: j.req("tenants")?,
            rows: j.req("rows")?,
            cache: j.req("cache")?,
        })
    }
}

/// The `stats` reply body. Counts are lifetime totals for the running
/// server process; they are diagnostics, explicitly *outside* the
/// byte-determinism contract (`docs/PROTOCOL.md` §5).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Requests handled (all ops, errors included).
    pub requests: u64,
    /// Questions answered through the engine or cache.
    pub questions: u64,
    /// Micro-batches dispatched to the inference engine.
    pub batches: u64,
    /// Checkpoint swaps performed.
    pub swaps: u64,
    /// Per-tenant admission rows, sorted by tenant.
    pub tenants: Vec<TenantStats>,
    /// Per-table rows, sorted by fingerprint.
    pub tables: Vec<TableStats>,
    /// Engine-global cache accounting (sums of the per-table rows for
    /// fingerprints still attributable, plus any pre-registration
    /// traffic).
    pub cache: CacheCounts,
    /// Entries currently cached.
    pub cache_len: u64,
}

impl ToJson for ServerStats {
    fn to_json(&self) -> Json {
        Json::obj([
            ("requests", self.requests.to_json()),
            ("questions", self.questions.to_json()),
            ("batches", self.batches.to_json()),
            ("swaps", self.swaps.to_json()),
            ("tenants", self.tenants.to_json()),
            ("tables", self.tables.to_json()),
            ("cache", self.cache.to_json()),
            ("cache_len", self.cache_len.to_json()),
        ])
    }
}

impl FromJson for ServerStats {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        Ok(ServerStats {
            requests: j.req("requests")?,
            questions: j.req("questions")?,
            batches: j.req("batches")?,
            swaps: j.req("swaps")?,
            tenants: j.req("tenants")?,
            tables: j.req("tables")?,
            cache: j.req("cache")?,
            cache_len: j.req("cache_len")?,
        })
    }
}

/// Successful reply bodies, one per operation (`docs/PROTOCOL.md` §4).
#[derive(Debug, Clone, PartialEq)]
pub enum Reply {
    /// `register_table` succeeded (or the table was already registered).
    Registered {
        /// The table's fingerprint — the handle `ask`/`batch` use.
        fingerprint: u64,
    },
    /// `ask` succeeded.
    Answer(Answer),
    /// `batch` succeeded (individual items may still carry errors).
    Batch {
        /// Item results, in request order.
        results: Vec<BatchItem>,
    },
    /// `swap_checkpoint` succeeded; the new model serves every
    /// subsequently dequeued request.
    Swapped {
        /// The checkpoint path that was loaded.
        checkpoint: String,
    },
    /// `stats` body.
    Stats(ServerStats),
    /// `shutdown` acknowledged; the server stops accepting connections.
    Bye,
}

impl Reply {
    /// The wire `type` string.
    pub fn type_name(&self) -> &'static str {
        match self {
            Reply::Registered { .. } => "registered",
            Reply::Answer(_) => "answer",
            Reply::Batch { .. } => "batch",
            Reply::Swapped { .. } => "swapped",
            Reply::Stats(_) => "stats",
            Reply::Bye => "bye",
        }
    }
}

/// One server response frame: the echoed request id plus either a typed
/// reply or a structured error.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// The request's `id`, echoed verbatim (`null` for frames whose id
    /// could not be parsed).
    pub id: Json,
    /// The outcome.
    pub result: Result<Reply, WireError>,
}

impl Response {
    /// A success response.
    pub fn ok(id: Json, reply: Reply) -> Response {
        Response { id, result: Ok(reply) }
    }

    /// An error response.
    pub fn err(id: Json, error: WireError) -> Response {
        Response { id, result: Err(error) }
    }
}

impl ToJson for Response {
    fn to_json(&self) -> Json {
        let mut fields = vec![
            ("v".into(), Json::Int(PROTOCOL_VERSION as i64)),
            ("id".into(), self.id.clone()),
        ];
        match &self.result {
            Ok(reply) => {
                fields.push(("ok".into(), Json::Bool(true)));
                fields.push(("type".into(), Json::Str(reply.type_name().to_string())));
                match reply {
                    Reply::Registered { fingerprint } => fields.push((
                        "fingerprint".into(),
                        Json::Str(fingerprint_to_hex(*fingerprint)),
                    )),
                    Reply::Answer(a) => {
                        if let Json::Obj(pairs) = a.to_json() {
                            fields.extend(pairs);
                        }
                    }
                    Reply::Batch { results } => {
                        fields.push(("results".into(), results.to_json()))
                    }
                    Reply::Swapped { checkpoint } => {
                        fields.push(("checkpoint".into(), checkpoint.to_json()))
                    }
                    Reply::Stats(s) => fields.push(("stats".into(), s.to_json())),
                    Reply::Bye => {}
                }
            }
            Err(e) => {
                fields.push(("ok".into(), Json::Bool(false)));
                fields.push(("error".into(), e.to_json()));
            }
        }
        Json::Obj(fields)
    }
}

impl FromJson for Response {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        let id = j.get("id").cloned().unwrap_or(Json::Null);
        let ok: bool = j.req("ok")?;
        if !ok {
            return Ok(Response { id, result: Err(j.req("error")?) });
        }
        let ty: String = j.req("type")?;
        let reply = match ty.as_str() {
            "registered" => {
                let fp: String = j.req("fingerprint")?;
                Reply::Registered {
                    fingerprint: fingerprint_from_hex(&fp)
                        .ok_or_else(|| JsonError::new(format!("invalid fingerprint '{fp}'")))?,
                }
            }
            "answer" => Reply::Answer(Answer::from_json(j)?),
            "batch" => Reply::Batch { results: j.req("results")? },
            "swapped" => Reply::Swapped { checkpoint: j.req("checkpoint")? },
            "stats" => Reply::Stats(j.req("stats")?),
            "bye" => Reply::Bye,
            other => return Err(JsonError::new(format!("unknown response type '{other}'"))),
        };
        Ok(Response { id, result: Ok(reply) })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nlidb_sqlir::{CmpOp, Literal};
    use nlidb_storage::{Column, DataType, Schema, Value};

    fn table() -> Table {
        let mut t = Table::new(
            "films",
            Schema::new(vec![
                Column::new("Film Name", DataType::Text),
                Column::new("Year", DataType::Int),
            ]),
        );
        t.push_row(vec![Value::Text("27 Stolen Kisses".into()), Value::Int(2000)]);
        t
    }

    fn roundtrip_request(r: &Request) {
        let j = r.to_json();
        let parsed = Json::parse(&j.to_string()).unwrap();
        assert_eq!(&Request::from_json(&parsed).unwrap(), r);
    }

    fn roundtrip_response(r: &Response) {
        let j = r.to_json();
        let parsed = Json::parse(&j.to_string()).unwrap();
        assert_eq!(&Response::from_json(&parsed).unwrap(), r);
    }

    #[test]
    fn fingerprint_hex_roundtrip_and_canonical_form() {
        for fp in [0u64, 1, 0xdead_beef, u64::MAX] {
            let hex = fingerprint_to_hex(fp);
            assert_eq!(hex.len(), 16);
            assert_eq!(fingerprint_from_hex(&hex), Some(fp));
        }
        assert_eq!(fingerprint_from_hex("FF"), Some(255), "short and uppercase tolerated");
        assert_eq!(fingerprint_from_hex(""), None);
        assert_eq!(fingerprint_from_hex("00000000000000000"), None, "17 digits");
        assert_eq!(fingerprint_from_hex("xyz"), None);
    }

    #[test]
    fn every_op_roundtrips() {
        let item = AskItem { fingerprint: 7, question: vec!["which".into(), "year".into()], guided: false };
        for op in [
            Op::RegisterTable { table: table() },
            Op::Ask(item.clone()),
            Op::Batch { items: vec![item.clone(), item] },
            Op::SwapCheckpoint { path: "ckpt/v2".into() },
            Op::Stats,
            Op::Shutdown,
        ] {
            roundtrip_request(&Request::new(3, "acme", op));
        }
    }

    #[test]
    fn guided_flag_roundtrips_and_is_omitted_when_false() {
        let unguided =
            AskItem { fingerprint: 7, question: vec!["which".into(), "year".into()], guided: false };
        let guided = AskItem { guided: true, ..unguided.clone() };
        roundtrip_request(&Request::new(3, "acme", Op::Ask(guided.clone())));
        roundtrip_request(&Request::new(4, "acme", Op::Batch { items: vec![guided.clone(), unguided.clone()] }));
        // Canonical form: `guided` appears exactly when true, so the
        // unguided wire bytes predate the flag unchanged.
        let off = Request::new(3, "acme", Op::Ask(unguided)).to_json().to_string();
        let on = Request::new(3, "acme", Op::Ask(guided)).to_json().to_string();
        assert!(!off.contains("guided"), "false is omitted: {off}");
        assert!(on.ends_with(",\"guided\":true}"), "true trails the item fields: {on}");
        // Decoding defaults to unguided when the field is absent.
        let parsed = Json::parse(&off).unwrap();
        match Request::from_json(&parsed).unwrap().op {
            Op::Ask(item) => assert!(!item.guided),
            other => panic!("expected ask, got {}", other.name()),
        }
    }

    #[test]
    fn every_reply_roundtrips() {
        let ans = Answer {
            query: Some(
                Query::select(0).and_where(1, CmpOp::Eq, Literal::Number(2000.0)),
            ),
            sql: Some("SELECT Film Name WHERE Year = 2000".into()),
        };
        for reply in [
            Reply::Registered { fingerprint: u64::MAX },
            Reply::Answer(ans.clone()),
            Reply::Answer(Answer { query: None, sql: None }),
            Reply::Batch {
                results: vec![
                    BatchItem::Answer(ans),
                    BatchItem::Failed(WireError::new(ErrorCode::UnknownTable, "no such table")),
                ],
            },
            Reply::Swapped { checkpoint: "ckpt/v2".into() },
            Reply::Stats(ServerStats {
                requests: 4,
                questions: 2,
                batches: 1,
                swaps: 0,
                tenants: vec![TenantStats {
                    tenant: "acme".into(),
                    admitted: 2,
                    shed: 1,
                    in_flight: 0,
                }],
                tables: vec![TableStats {
                    fingerprint: 9,
                    name: "films".into(),
                    tenants: vec!["acme".into()],
                    rows: 1,
                    cache: CacheCounts { hits: 1, misses: 1, insertions: 1, evictions: 0 },
                }],
                cache: CacheCounts { hits: 1, misses: 1, insertions: 1, evictions: 0 },
                cache_len: 1,
            }),
            Reply::Bye,
        ] {
            roundtrip_response(&Response::ok(Json::Int(1), reply));
        }
        roundtrip_response(&Response::err(
            Json::Null,
            WireError::new(ErrorCode::Overloaded, "tenant queue full"),
        ));
    }

    #[test]
    fn decode_maps_failures_to_documented_codes() {
        let code = |src: &str| {
            Request::decode(&Json::parse(src).unwrap()).unwrap_err().code
        };
        assert_eq!(code("[1,2]"), ErrorCode::BadRequest);
        assert_eq!(code(r#"{"id":1}"#), ErrorCode::BadRequest, "missing op");
        assert_eq!(code(r#"{"op":"dance"}"#), ErrorCode::UnknownOp);
        assert_eq!(code(r#"{"v":99,"op":"stats"}"#), ErrorCode::UnsupportedVersion);
        assert_eq!(code(r#"{"op":"ask","fingerprint":"zz","question":[]}"#), ErrorCode::BadRequest);
        assert_eq!(code(r#"{"op":"batch","items":[]}"#), ErrorCode::BadRequest);
        assert_eq!(code(r#"{"op":"ask","question":["hi"]}"#), ErrorCode::BadRequest);
    }

    #[test]
    fn version_defaults_to_one_and_unknown_fields_are_ignored() {
        let j = Json::parse(r#"{"op":"stats","tenant":"t","future_field":[1,2,3]}"#).unwrap();
        let r = Request::decode(&j).unwrap();
        assert_eq!(r.op, Op::Stats);
        assert_eq!(r.tenant, "t");
        assert_eq!(r.id, Json::Null);
    }

    #[test]
    fn string_question_splits_on_whitespace() {
        let j = Json::parse(
            r#"{"op":"ask","fingerprint":"00ff","question":"which  county\tis it"}"#,
        )
        .unwrap();
        let r = Request::decode(&j).unwrap();
        match r.op {
            Op::Ask(item) => {
                assert_eq!(item.question, vec!["which", "county", "is", "it"]);
                assert_eq!(item.fingerprint, 0xff);
            }
            other => panic!("expected ask, got {other:?}"),
        }
    }

    #[test]
    fn error_code_wire_names_are_unique_and_stable() {
        let mut names: Vec<&str> = ErrorCode::ALL.iter().map(|c| c.as_str()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), ErrorCode::ALL.len());
        for c in ErrorCode::ALL {
            assert_eq!(ErrorCode::from_str(c.as_str()), Some(c));
        }
    }
}
