//! The TCP front end: accept loop, per-connection threads, bounded
//! frame reading, and graceful shutdown.
//!
//! ## Thread model
//!
//! One polling acceptor thread, one engine thread (`crate::engine`),
//! and one thread per live connection. Connection threads are
//! synchronous: read one frame, admit it, submit it to the engine
//! queue, wait for the result, write one response frame. One request
//! in flight per connection keeps responses in request order on every
//! connection with zero reordering machinery, and bounds per-connection
//! memory to one frame each way.
//!
//! ## Timeouts never touch response bytes
//!
//! Sockets carry read/write timeouts so blocked threads can observe
//! shutdown, and the acceptor polls. Every timeout affects *when*
//! something happens (latency, shutdown promptness, how long a stalled
//! client is tolerated) — never *what* is answered. Response bytes are
//! produced by the engine from (request, catalog, model) alone; the
//! replay test in `tests/server_determinism.rs` pins this by replaying
//! a fixed request log under different timings and thread counts.
//!
//! ## Failure containment
//!
//! A malformed frame, oversized line, mid-request disconnect, or shed
//! request is handled entirely on the connection thread — the engine
//! never sees it, so catalog, cache, and model state are byte-identical
//! to a history in which the bad request never arrived
//! (`tests/fault_injection.rs`).

use std::io::{self, ErrorKind, Read, Write};
use std::mem;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use nlidb_core::Nlidb;
use nlidb_json::{decode_frame, FrameError, Json, ToJson, MAX_FRAME_BYTES};

use crate::admission::{Admission, AdmissionConfig};
use crate::engine::{Engine, EngineConfig, Job, ServeJob};
use crate::protocol::{ErrorCode, Op, Request, Response, WireError};

/// How often the acceptor polls for shutdown between `accept` attempts.
const ACCEPT_POLL: Duration = Duration::from_millis(10);

/// Server configuration. [`Default`] gives a loopback server on an
/// OS-assigned port with small-batch, low-latency settings.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address, e.g. `"127.0.0.1:0"` (port 0 = OS-assigned; read
    /// the actual port from [`ServerHandle::addr`]).
    pub addr: String,
    /// Micro-batch size trigger: dispatch as soon as this many
    /// questions are pending.
    pub max_batch_questions: usize,
    /// Micro-batch latency trigger: dispatch at most this long after
    /// the first pending question. Affects latency only, never bytes.
    pub linger: Duration,
    /// Prediction-cache capacity (`0` disables caching).
    pub cache_capacity: usize,
    /// Admission-control bounds.
    pub admission: AdmissionConfig,
    /// How often blocked connection reads wake to check for shutdown.
    pub read_poll: Duration,
    /// How long a response write may stall before the connection is
    /// dropped (a reader slower than this on a full pipe is shed at the
    /// transport; it never affects what bytes were produced).
    pub write_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            max_batch_questions: 32,
            linger: Duration::from_millis(2),
            cache_capacity: 1024,
            admission: AdmissionConfig::default(),
            read_poll: Duration::from_millis(25),
            write_timeout: Duration::from_secs(10),
        }
    }
}

/// The server entry point (a namespace; state lives in the threads and
/// the returned [`ServerHandle`]).
pub struct Server;

/// State shared by all connection threads.
struct Shared {
    admission: Arc<Admission>,
    /// Responses written across all connections (errors included).
    requests: Arc<AtomicU64>,
    shutdown: Arc<AtomicBool>,
    read_poll: Duration,
    write_timeout: Duration,
}

impl Server {
    /// Binds, spawns the engine and acceptor threads, and returns a
    /// handle. The model is *moved in*: the engine thread is its sole
    /// owner for the life of the server (hot-swaps replace it wholesale).
    pub fn start(nlidb: Nlidb, cfg: ServerConfig) -> io::Result<ServerHandle> {
        let listener = TcpListener::bind(&cfg.addr)?;
        // The acceptor polls so shutdown can never hang on a blocked
        // `accept` (accepted sockets are switched back to blocking).
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;

        let admission = Arc::new(Admission::new(cfg.admission));
        let requests = Arc::new(AtomicU64::new(0));
        let shutdown = Arc::new(AtomicBool::new(false));
        let (jobs_tx, jobs_rx) = mpsc::channel::<Job>();

        let engine = Engine::new(
            nlidb,
            Arc::clone(&admission),
            Arc::clone(&requests),
            EngineConfig {
                max_batch_questions: cfg.max_batch_questions.max(1),
                linger: cfg.linger,
                cache_capacity: cfg.cache_capacity,
            },
        );
        let engine_flag = Arc::clone(&shutdown);
        let engine_thread = std::thread::Builder::new()
            .name("nlidb-serve-engine".into())
            .spawn(move || engine.run(jobs_rx, move || engine_flag.store(true, Ordering::SeqCst)))?;

        let shared = Arc::new(Shared {
            admission,
            requests,
            shutdown: Arc::clone(&shutdown),
            read_poll: cfg.read_poll,
            write_timeout: cfg.write_timeout,
        });
        let conns: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::default();

        let accept_conns = Arc::clone(&conns);
        let accept_shared = Arc::clone(&shared);
        let accept_jobs = jobs_tx.clone();
        let accept_thread = std::thread::Builder::new()
            .name("nlidb-serve-accept".into())
            .spawn(move || {
                accept_loop(listener, accept_jobs, accept_shared, accept_conns);
            })?;

        Ok(ServerHandle {
            addr,
            jobs: jobs_tx,
            shutdown,
            engine: Some(engine_thread),
            accept: Some(accept_thread),
            conns,
        })
    }
}

/// A running server. Dropping the handle shuts the server down and
/// joins every thread.
pub struct ServerHandle {
    addr: SocketAddr,
    jobs: Sender<Job>,
    shutdown: Arc<AtomicBool>,
    engine: Option<JoinHandle<()>>,
    accept: Option<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl ServerHandle {
    /// The bound address (with the OS-assigned port when the config
    /// asked for port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Shuts down gracefully: in-flight requests are answered, then the
    /// engine, acceptor, and connection threads exit and are joined.
    /// Also safe (and useful) after a protocol-level `shutdown` — it
    /// then just joins the already-stopping threads.
    pub fn shutdown(mut self) {
        self.shutdown_and_join();
    }

    fn shutdown_and_join(&mut self) {
        let (tx, rx) = mpsc::channel();
        if self.jobs.send(Job::Shutdown { reply: tx }).is_ok() {
            // Wait for the engine to drain up to the shutdown job; a
            // bounded wait so a wedged engine cannot hang the caller
            // forever before the joins below.
            let _ = rx.recv_timeout(Duration::from_secs(30));
        }
        // Belt and braces: the engine's shutdown path sets this too.
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(h) = self.engine.take() {
            let _ = h.join();
        }
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        let handles = {
            let mut guard = self.conns.lock().unwrap_or_else(|p| p.into_inner());
            mem::take(&mut *guard)
        };
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown_and_join();
    }
}

/// Polling accept loop: hands each connection its own thread and a
/// cloned job sender.
fn accept_loop(
    listener: TcpListener,
    jobs: Sender<Job>,
    shared: Arc<Shared>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                let conn_jobs = jobs.clone();
                let conn_shared = Arc::clone(&shared);
                let spawned = std::thread::Builder::new()
                    .name("nlidb-serve-conn".into())
                    .spawn(move || handle_conn(stream, conn_jobs, conn_shared));
                if let Ok(handle) = spawned {
                    let mut guard = conns.lock().unwrap_or_else(|p| p.into_inner());
                    guard.push(handle);
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(_) => {
                // Transient accept failure (e.g. fd exhaustion): back
                // off instead of spinning.
                std::thread::sleep(ACCEPT_POLL);
            }
        }
    }
}

/// One frame-read attempt's outcome.
enum ReadOutcome {
    /// A complete line (terminator included), within the frame bound.
    Frame(String),
    /// The line exceeded [`MAX_FRAME_BYTES`]; the reader discarded
    /// through the terminating newline, so framing is intact.
    TooLong,
    /// The line held invalid UTF-8 (consumed through its newline).
    BadUtf8,
    /// Peer closed the connection (EOF — possibly mid-line; any partial
    /// frame is discarded unprocessed).
    Closed,
    /// The server is shutting down.
    ShuttingDown,
}

/// A bounded, shutdown-aware line reader over a blocking socket with a
/// read timeout. Unlike `BufReader::read_line`, it survives timeouts
/// mid-line, bounds buffered bytes to one frame, and resynchronizes
/// after an oversized line instead of ballooning memory.
struct LineReader {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl LineReader {
    fn new(stream: TcpStream) -> LineReader {
        LineReader { stream, buf: Vec::new() }
    }

    fn read_frame(&mut self, shutdown: &AtomicBool) -> ReadOutcome {
        let mut discarding = false;
        let mut chunk = [0u8; 4096];
        loop {
            // A buffered terminator completes a frame.
            if let Some(i) = self.buf.iter().position(|&b| b == b'\n') {
                let line: Vec<u8> = self.buf.drain(..=i).collect();
                return match String::from_utf8(line) {
                    Ok(s) => ReadOutcome::Frame(s),
                    Err(_) => ReadOutcome::BadUtf8,
                };
            }
            // Too much buffered without a terminator: switch to discard
            // mode (drop bytes until the newline) so a runaway line
            // costs one chunk of memory, not unbounded growth.
            if !discarding && self.buf.len() >= MAX_FRAME_BYTES {
                self.buf.clear();
                discarding = true;
            }
            match self.stream.read(&mut chunk) {
                Ok(0) => return ReadOutcome::Closed,
                Ok(n) => {
                    if discarding {
                        if let Some(i) = chunk[..n].iter().position(|&b| b == b'\n') {
                            self.buf.extend_from_slice(&chunk[i + 1..n]);
                            return ReadOutcome::TooLong;
                        }
                    } else {
                        self.buf.extend_from_slice(&chunk[..n]);
                    }
                }
                Err(e)
                    if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut =>
                {
                    if shutdown.load(Ordering::SeqCst) {
                        return ReadOutcome::ShuttingDown;
                    }
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => return ReadOutcome::Closed,
            }
        }
    }
}

/// The per-connection loop: read frame → handle → write response.
fn handle_conn(stream: TcpStream, jobs: Sender<Job>, shared: Arc<Shared>) {
    nlidb_trace::count("server.connections", 1);
    let _ = stream.set_nodelay(true);
    // Accepted sockets must be blocking-with-timeout regardless of what
    // the polling listener's mode was inherited as.
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_read_timeout(Some(shared.read_poll));
    let _ = stream.set_write_timeout(Some(shared.write_timeout));
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = LineReader::new(stream);
    loop {
        let line = match reader.read_frame(&shared.shutdown) {
            ReadOutcome::Closed | ReadOutcome::ShuttingDown => break,
            ReadOutcome::TooLong => {
                let resp = Response::err(
                    Json::Null,
                    WireError::new(
                        ErrorCode::FrameTooLong,
                        format!("frame exceeds the {MAX_FRAME_BYTES}-byte limit"),
                    ),
                );
                if write_response(&mut writer, &shared, resp) {
                    continue;
                }
                break;
            }
            ReadOutcome::BadUtf8 => {
                let resp = Response::err(
                    Json::Null,
                    WireError::new(ErrorCode::BadFrame, "frame is not valid UTF-8"),
                );
                if write_response(&mut writer, &shared, resp) {
                    continue;
                }
                break;
            }
            ReadOutcome::Frame(line) => line,
        };
        // Blank lines between frames are tolerated (interactive use).
        if line.trim().is_empty() {
            continue;
        }
        let _sp = nlidb_trace::span("server.request");
        let response = match decode_frame(&line) {
            Err(FrameError::TooLong(_)) => Response::err(
                Json::Null,
                WireError::new(
                    ErrorCode::FrameTooLong,
                    format!("frame exceeds the {MAX_FRAME_BYTES}-byte limit"),
                ),
            ),
            Err(FrameError::BadJson(m)) => Response::err(
                Json::Null,
                WireError::new(ErrorCode::BadFrame, format!("frame is not valid JSON: {m}")),
            ),
            Ok(json) => {
                // Echo the id even when the request is otherwise invalid.
                let id = json.get("id").cloned().unwrap_or(Json::Null);
                match Request::decode(&json) {
                    Err(e) => Response::err(id, e),
                    Ok(req) => handle_request(req, &jobs, &shared),
                }
            }
        };
        if !write_response(&mut writer, &shared, response) {
            break;
        }
    }
}

/// Admits (if applicable), submits, and awaits one decoded request.
fn handle_request(req: Request, jobs: &Sender<Job>, shared: &Shared) -> Response {
    let Request { id, tenant, op } = req;
    let (tx, rx) = mpsc::channel();
    let shutting_down =
        |id: Json| Response::err(id, WireError::new(ErrorCode::ShuttingDown, "server is shutting down"));
    let job = match op {
        Op::Ask(item) => match shared.admission.try_admit(&tenant, 1) {
            Some(permit) => {
                Job::Serve(ServeJob { tenant, items: vec![item], wrap_batch: false, reply: tx, permit })
            }
            None => return shed(id, &tenant),
        },
        Op::Batch { items } => match shared.admission.try_admit(&tenant, items.len()) {
            Some(permit) => {
                Job::Serve(ServeJob { tenant, items, wrap_batch: true, reply: tx, permit })
            }
            None => return shed(id, &tenant),
        },
        Op::RegisterTable { table } => Job::Register { tenant, table, reply: tx },
        Op::SwapCheckpoint { path } => Job::Swap { path, reply: tx },
        Op::Stats => Job::Stats { reply: tx },
        Op::Shutdown => Job::Shutdown { reply: tx },
    };
    if jobs.send(job).is_err() {
        return shutting_down(id);
    }
    match rx.recv() {
        Ok(result) => Response { id, result },
        // The engine dropped the queue (shutdown) before answering.
        Err(_) => shutting_down(id),
    }
}

/// The deterministic shed response: its bytes depend only on the
/// request's id and tenant, never on current load.
fn shed(id: Json, tenant: &str) -> Response {
    nlidb_trace::count("server.shed", 1);
    Response::err(
        id,
        WireError::new(
            ErrorCode::Overloaded,
            format!("admission queue full for tenant '{tenant}'; retry later"),
        ),
    )
}

/// Serializes and writes one response frame; returns `false` when the
/// connection should close. Mirrors `nlidb_json::encode_frame` but
/// substitutes a structured error instead of panicking if a response
/// ever exceeds the frame bound.
fn write_response(writer: &mut TcpStream, shared: &Shared, resp: Response) -> bool {
    let mut body = resp.to_json().to_string();
    if body.len() + 1 > MAX_FRAME_BYTES {
        let fallback = Response::err(
            resp.id.clone(),
            WireError::new(
                ErrorCode::ResponseTooLarge,
                "response exceeds the frame limit; narrow the request",
            ),
        );
        body = fallback.to_json().to_string();
    }
    body.push('\n');
    // lint:allow(atomic-ordering): monotonic stats counter bump; nothing synchronizes on it, readers tolerate staleness.
    shared.requests.fetch_add(1, Ordering::Relaxed);
    nlidb_trace::count("server.requests", 1);
    if resp.result.is_err() {
        nlidb_trace::count("server.errors", 1);
    }
    writer.write_all(body.as_bytes()).and_then(|()| writer.flush()).is_ok()
}
