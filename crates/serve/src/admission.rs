//! Per-tenant admission control with bounded queues.
//!
//! Every `ask`/`batch` request must take a [`Permit`] before it may
//! enter the engine queue. A permit covers the request's *cost* — its
//! question count — and is released when dropped (normally after the
//! response is written), so the two bounds below are hard limits on
//! queued-plus-executing work, which is what keeps server memory
//! bounded under overload:
//!
//! - **per-tenant**: one tenant flooding the server cannot crowd out
//!   the others beyond its own cap;
//! - **global**: the sum over all tenants is capped too, so many
//!   well-behaved tenants cannot jointly exhaust memory.
//!
//! Admission decisions are *load shedding*, never blocking: a request
//! over either bound is refused immediately with the `overloaded`
//! error code and has no effect on any server state. Whether a given
//! request is shed depends on concurrent load (inherently racy); what
//! is deterministic is the rule itself and the response bytes of every
//! outcome — see `docs/PROTOCOL.md` §5.
//!
//! Control operations (`register_table`, `swap_checkpoint`, `stats`,
//! `shutdown`) bypass admission: they are rare, cheap, and must work
//! precisely when the server is saturated.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// Admission bounds. The defaults are deliberately modest; operators
/// size them to `max_batch_questions` × acceptable queue depth.
#[derive(Debug, Clone, Copy)]
pub struct AdmissionConfig {
    /// Maximum in-flight questions per tenant. `0` sheds everything —
    /// useful to drain a tenant (and for deterministic shedding tests).
    pub per_tenant: usize,
    /// Maximum in-flight questions across all tenants.
    pub total: usize,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig { per_tenant: 64, total: 256 }
    }
}

/// Lifetime counters for one tenant.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TenantCounters {
    /// Questions currently admitted and not yet released.
    pub in_flight: u64,
    /// Questions ever admitted.
    pub admitted: u64,
    /// Questions ever shed.
    pub shed: u64,
}

#[derive(Debug, Default)]
struct AdmissionState {
    tenants: BTreeMap<String, TenantCounters>,
    total_in_flight: usize,
}

/// The admission controller, shared by all connection threads.
#[derive(Debug)]
pub struct Admission {
    cfg: AdmissionConfig,
    state: Mutex<AdmissionState>,
}

impl Admission {
    /// A controller with the given bounds.
    pub fn new(cfg: AdmissionConfig) -> Admission {
        Admission { cfg, state: Mutex::new(AdmissionState::default()) }
    }

    /// The configured bounds.
    pub fn config(&self) -> AdmissionConfig {
        self.cfg
    }

    /// Tries to admit `cost` questions for `tenant`. On refusal the
    /// tenant's shed counter is bumped and nothing else changes.
    ///
    /// The rule: admit iff `tenant.in_flight + cost <= per_tenant` and
    /// `total_in_flight + cost <= total`.
    pub fn try_admit(self: &Arc<Self>, tenant: &str, cost: usize) -> Option<Permit> {
        let cost = cost.max(1);
        // Poison recovery (here and below): the state is plain counters,
        // valid after any partial update, so a panic in another holder
        // must not take admission — and with it the server — down.
        let mut st = self.state.lock().unwrap_or_else(|p| p.into_inner());
        let total_ok = st.total_in_flight + cost <= self.cfg.total;
        let tc = st.tenants.entry(tenant.to_string()).or_default();
        let tenant_ok = tc.in_flight as usize + cost <= self.cfg.per_tenant;
        if !(tenant_ok && total_ok) {
            tc.shed += cost as u64;
            return None;
        }
        tc.in_flight += cost as u64;
        tc.admitted += cost as u64;
        st.total_in_flight += cost;
        Some(Permit { admission: Arc::clone(self), tenant: tenant.to_string(), cost })
    }

    /// Per-tenant counters, sorted by tenant name (for `stats`).
    pub fn snapshot(&self) -> Vec<(String, TenantCounters)> {
        let st = self.state.lock().unwrap_or_else(|p| p.into_inner());
        st.tenants.iter().map(|(t, c)| (t.clone(), *c)).collect()
    }

    fn release(&self, tenant: &str, cost: usize) {
        let mut st = self.state.lock().unwrap_or_else(|p| p.into_inner());
        if let Some(tc) = st.tenants.get_mut(tenant) {
            tc.in_flight = tc.in_flight.saturating_sub(cost as u64);
        }
        st.total_in_flight = st.total_in_flight.saturating_sub(cost);
    }
}

/// An admitted request's hold on queue capacity. Dropping it releases
/// the capacity — on every path, including panics and disconnects —
/// which is what makes the bounds leak-free.
#[derive(Debug)]
pub struct Permit {
    admission: Arc<Admission>,
    tenant: String,
    cost: usize,
}

impl Permit {
    /// The question count this permit covers.
    pub fn cost(&self) -> usize {
        self.cost
    }
}

impl Drop for Permit {
    fn drop(&mut self) {
        self.admission.release(&self.tenant, self.cost);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn adm(per_tenant: usize, total: usize) -> Arc<Admission> {
        Arc::new(Admission::new(AdmissionConfig { per_tenant, total }))
    }

    #[test]
    fn per_tenant_bound_sheds_and_releases() {
        let a = adm(2, 100);
        let p1 = a.try_admit("t", 1).expect("first admitted");
        let _p2 = a.try_admit("t", 1).expect("second admitted");
        assert!(a.try_admit("t", 1).is_none(), "third shed");
        drop(p1);
        assert!(a.try_admit("t", 1).is_some(), "capacity returned on drop");
        let counters = a.snapshot();
        assert_eq!(counters[0].1.admitted, 3);
        assert_eq!(counters[0].1.shed, 1);
    }

    #[test]
    fn global_bound_spans_tenants() {
        let a = adm(10, 3);
        let _p1 = a.try_admit("x", 2).unwrap();
        let _p2 = a.try_admit("y", 1).unwrap();
        assert!(a.try_admit("z", 1).is_none(), "global cap reached");
    }

    #[test]
    fn batch_cost_is_all_or_nothing() {
        let a = adm(3, 100);
        assert!(a.try_admit("t", 4).is_none(), "batch larger than cap shed whole");
        let snap = a.snapshot();
        assert_eq!(snap[0].1.in_flight, 0, "no partial admission");
        assert_eq!(snap[0].1.shed, 4);
        assert!(a.try_admit("t", 3).is_some());
    }

    #[test]
    fn zero_cap_sheds_everything() {
        let a = adm(0, 100);
        assert!(a.try_admit("t", 1).is_none());
        assert_eq!(a.snapshot()[0].1.shed, 1);
    }

    #[test]
    fn zero_cost_counts_as_one() {
        let a = adm(1, 1);
        let _p = a.try_admit("t", 0).unwrap();
        assert!(a.try_admit("t", 0).is_none());
    }
}
